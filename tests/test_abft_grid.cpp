// In-grid ABFT end-to-end: PE-targeted fault injection against the
// systolic GEMM engine through the host runtime. The checksum rank must
// localize every injected single fault to its exact victim PE (matching
// the injector's ground truth) and correct it in place — zero retries,
// bit-identical results — while double faults degrade gracefully through
// the rollback -> retry -> CPU-fallback ladder.
//
// Fault decisions hash (seed, command seq, attempt), so every test here
// is deterministic under both executor policies.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "refblas/level3.hpp"
#include "verify/options.hpp"

namespace fblas {
namespace {

host::RetryPolicy fast_retry(int max_retries, bool cpu_fallback = false) {
  host::RetryPolicy p;
  p.max_retries = max_retries;
  p.backoff = std::chrono::microseconds(0);
  p.max_backoff = std::chrono::microseconds(0);
  p.cpu_fallback = cpu_fallback;
  return p;
}

template <typename T>
std::vector<T> gemm_ref(std::int64_t m, std::int64_t n, std::int64_t k,
                        const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> c(static_cast<std::size_t>(m * n), T(0));
  ref::gemm<T>(Transpose::None, Transpose::None, T(1),
               MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n), T(0),
               MatrixView<T>(c.data(), m, n));
  return c;
}

// --- Acceptance: single faults corrected in place, zero retries -----------

TEST(AbftGrid, SingleFaultsCorrectedInPlaceBitIdentical) {
  const std::int64_t m = 12, n = 10, k = 16;
  const int rounds = 8;
  Workload wl(501);
  const auto ha = wl.matrix<float>(m, k);
  const auto hb = wl.matrix<float>(k, n);
  const auto expect = gemm_ref<float>(m, n, k, ha, hb);

  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig fc;
  fc.seed = 11;
  fc.pe_fault_rate = 1.0;
  fc.max_faults = rounds;
  dev.inject_faults(fc);
  ctx.set_retry_policy(fast_retry(3, true));
  ctx.config().verification = verify::Options::always().in_grid();

  host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
  a.write(ha);
  b.write(hb);
  for (int round = 0; round < rounds; ++round) {
    c.write(std::vector<float>(static_cast<std::size_t>(m * n), -1.0f));
    ctx.gemm_systolic<float>(m, n, k, a, b, c);
    // Corrected in place: bit-identical to the fault-free reference.
    EXPECT_EQ(c.to_host(), expect) << "round " << round;
  }
  const auto stats = ctx.exec_stats();
  EXPECT_EQ(stats.faults_injected, static_cast<std::uint64_t>(rounds));
  EXPECT_EQ(stats.pe_faults_localized, static_cast<std::uint64_t>(rounds));
  EXPECT_EQ(stats.faults_corrected, static_cast<std::uint64_t>(rounds));
  EXPECT_EQ(stats.retries, 0u);        // cheaper rung than rollback/retry
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.verify_failures, 0u);
  EXPECT_EQ(stats.verified, static_cast<std::uint64_t>(rounds));
}

// --- Fuzz: localization matches the injector's ground truth ---------------
// >= 200 multiplies across varying (ragged) shapes; for every fault that
// materializes, the engine's diagnosis must name the exact victim PE the
// injector planned — under the serial and the worker-pool executors.

void fuzz_localization(int workers) {
  host::Device dev;
  host::Context ctx(dev, stream::Mode::Functional, workers);
  host::FaultConfig fc;
  fc.seed = 12 + static_cast<std::uint64_t>(workers);
  fc.pe_fault_rate = 1.0;  // every command draws a PE fault
  dev.inject_faults(fc);
  ctx.config().verification = verify::Options::always().in_grid();

  Workload wl(502);
  std::uint64_t checked = 0;
  for (int i = 0; i < 200; ++i) {
    const std::int64_t m = 3 + (i * 7) % 14;
    const std::int64_t n = 2 + (i * 5) % 12;
    const std::int64_t k = 1 + (i * 3) % 10;
    const auto ha = wl.matrix<float>(m, k);
    const auto hb = wl.matrix<float>(k, n);
    host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
    a.write(ha);
    b.write(hb);
    c.write(std::vector<float>(static_cast<std::size_t>(m * n), 0.0f));
    ctx.gemm_systolic<float>(m, n, k, a, b, c);

    const auto victim = dev.faults().last_pe_victim();
    const auto report = ctx.last_grid_report();
    if (!victim.valid) continue;  // the planned product never went nonzero
    ASSERT_EQ(report.faults.size(), 1u) << "iteration " << i;
    EXPECT_EQ(report.faults[0].tile_row, victim.tile_row) << "iter " << i;
    EXPECT_EQ(report.faults[0].tile_col, victim.tile_col) << "iter " << i;
    EXPECT_EQ(report.faults[0].r, victim.r) << "iter " << i;
    EXPECT_EQ(report.faults[0].c, victim.c) << "iter " << i;
    EXPECT_TRUE(report.faults[0].corrected) << "iter " << i;
    EXPECT_EQ(c.to_host(), gemm_ref<float>(m, n, k, ha, hb))
        << "iter " << i;
    ++checked;
  }
  // The [-1, 1] workload makes a zero product vanishingly rare: the fault
  // must have materialized (and been verified) in essentially every run.
  EXPECT_GE(checked, 195u);
  const auto stats = ctx.exec_stats();
  EXPECT_EQ(stats.pe_faults_localized, checked);
  EXPECT_EQ(stats.faults_corrected, checked);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.degraded, 0u);
}

TEST(AbftGrid, FuzzLocalizationMatchesGroundTruthSerial) {
  fuzz_localization(0);
}

TEST(AbftGrid, FuzzLocalizationMatchesGroundTruthWorkerPool) {
  fuzz_localization(4);
}

// --- Double faults: refuse to correct, degrade to the retry ladder --------

TEST(AbftGrid, DoubleFaultRejectsAndRecoversThroughRetry) {
  const std::int64_t m = 12, n = 10, k = 16;
  Workload wl(503);
  const auto ha = wl.matrix<float>(m, k);
  const auto hb = wl.matrix<float>(k, n);

  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig fc;
  fc.seed = 13;
  fc.pe_fault_rate = 1.0;
  fc.pe_fault_pairs = true;  // two flips, distinct PEs, same tile
  fc.max_faults = 1;         // the retry runs clean
  dev.inject_faults(fc);
  ctx.set_retry_policy(fast_retry(3));
  ctx.config().verification = verify::Options::always().in_grid();

  host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
  a.write(ha);
  b.write(hb);
  c.write(std::vector<float>(static_cast<std::size_t>(m * n), 0.0f));
  ctx.gemm_systolic<float>(m, n, k, a, b, c);

  EXPECT_EQ(c.to_host(), gemm_ref<float>(m, n, k, ha, hb));
  const auto stats = ctx.exec_stats();
  EXPECT_EQ(stats.faults_injected, 1u);
  EXPECT_EQ(stats.retries, 1u);       // rejected, rolled back, re-run clean
  EXPECT_EQ(stats.sdc_caught, 1u);
  EXPECT_EQ(stats.faults_corrected, 0u);  // never corrects a 2-fault tile
  EXPECT_EQ(stats.degraded, 0u);
  const auto report = ctx.last_grid_report();
  EXPECT_EQ(report.uncorrectable_tiles, 0u);  // the clean retry's report
}

TEST(AbftGrid, PersistentDoubleFaultsDegradeToCpuFallback) {
  const std::int64_t m = 12, n = 10, k = 16;
  Workload wl(504);
  const auto ha = wl.matrix<float>(m, k);
  const auto hb = wl.matrix<float>(k, n);

  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig fc;
  fc.seed = 14;
  fc.pe_fault_rate = 1.0;
  fc.pe_fault_pairs = true;  // every attempt double-faults
  dev.inject_faults(fc);
  ctx.set_retry_policy(fast_retry(2, /*cpu_fallback=*/true));
  ctx.config().verification = verify::Options::always().in_grid();

  host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
  a.write(ha);
  b.write(hb);
  c.write(std::vector<float>(static_cast<std::size_t>(m * n), 0.0f));
  host::Event e = ctx.gemm_systolic_async<float>(m, n, k, a, b, c);
  e.wait();

  EXPECT_EQ(c.to_host(), gemm_ref<float>(m, n, k, ha, hb));
  const auto stats = ctx.exec_stats();
  EXPECT_EQ(stats.retries, 2u);   // exhausted the budget...
  EXPECT_EQ(stats.degraded, 1u);  // ...then the CPU reference served it
  EXPECT_EQ(stats.faults_corrected, 0u);
  EXPECT_EQ(stats.sdc_caught, 3u);  // every attempt was caught
}

// --- Detect-only policy: localization without correction ------------------

TEST(AbftGrid, DetectOnlyRejectsInsteadOfCorrecting) {
  const std::int64_t m = 12, n = 10, k = 16;
  Workload wl(505);
  const auto ha = wl.matrix<float>(m, k);
  const auto hb = wl.matrix<float>(k, n);

  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig fc;
  fc.seed = 15;
  fc.pe_fault_rate = 1.0;
  fc.max_faults = 1;
  dev.inject_faults(fc);
  ctx.set_retry_policy(fast_retry(3));
  ctx.config().verification =
      verify::Options::always().in_grid().correct_single_faults(false);

  host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
  a.write(ha);
  b.write(hb);
  c.write(std::vector<float>(static_cast<std::size_t>(m * n), 0.0f));
  ctx.gemm_systolic<float>(m, n, k, a, b, c);

  EXPECT_EQ(c.to_host(), gemm_ref<float>(m, n, k, ha, hb));
  const auto stats = ctx.exec_stats();
  EXPECT_EQ(stats.pe_faults_localized, 1u);
  EXPECT_EQ(stats.faults_corrected, 0u);  // policy forbids the cheap rung
  EXPECT_EQ(stats.retries, 1u);           // so the ladder pays a retry
  EXPECT_EQ(stats.sdc_caught, 1u);
}

// --- Contrast: without in-grid ABFT the fault lands silently --------------

TEST(AbftGrid, UnverifiedBaselineMissesThePeFault) {
  const std::int64_t m = 12, n = 10, k = 16;
  Workload wl(506);
  const auto ha = wl.matrix<float>(m, k);
  const auto hb = wl.matrix<float>(k, n);

  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig fc;
  fc.seed = 16;
  fc.pe_fault_rate = 1.0;
  fc.max_faults = 1;
  dev.inject_faults(fc);
  // Verification off entirely: the flip reaches DRAM unchallenged.
  host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
  a.write(ha);
  b.write(hb);
  c.write(std::vector<float>(static_cast<std::size_t>(m * n), 0.0f));
  ctx.gemm_systolic<float>(m, n, k, a, b, c);

  EXPECT_NE(c.to_host(), gemm_ref<float>(m, n, k, ha, hb));
  const auto stats = ctx.exec_stats();
  EXPECT_EQ(stats.faults_injected, 1u);
  EXPECT_EQ(stats.verified, 0u);
  EXPECT_EQ(stats.pe_faults_localized, 0u);
  EXPECT_EQ(stats.faults_corrected, 0u);
}

// --- Concurrency: a faulted batch on the worker pool ----------------------

TEST(AbftGrid, ConcurrentFaultedBatchAllCorrected) {
  const std::int64_t m = 8, n = 8, k = 12;
  const int batch = 16;
  Workload wl(507);
  const auto ha = wl.matrix<float>(m, k);
  const auto hb = wl.matrix<float>(k, n);
  const auto expect = gemm_ref<float>(m, n, k, ha, hb);

  host::Device dev;
  host::Context ctx(dev, stream::Mode::Functional, 4);
  host::FaultConfig fc;
  fc.seed = 17;
  fc.pe_fault_rate = 1.0;
  dev.inject_faults(fc);
  ctx.set_retry_policy(fast_retry(3, true));
  ctx.config().verification = verify::Options::always().in_grid();

  host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1);
  a.write(ha);
  b.write(hb);
  std::vector<std::unique_ptr<host::Buffer<float>>> outs;
  for (int i = 0; i < batch; ++i) {
    outs.push_back(std::make_unique<host::Buffer<float>>(
        dev, m * n, i % dev.bank_count()));
    outs.back()->write(
        std::vector<float>(static_cast<std::size_t>(m * n), 0.0f));
    ctx.gemm_systolic_async<float>(m, n, k, a, b, *outs.back());
  }
  ctx.finish();
  for (int i = 0; i < batch; ++i) {
    EXPECT_EQ(outs[static_cast<std::size_t>(i)]->to_host(), expect)
        << "command " << i;
  }
  const auto stats = ctx.exec_stats();
  EXPECT_EQ(stats.faults_corrected, static_cast<std::uint64_t>(batch));
  EXPECT_EQ(stats.pe_faults_localized, static_cast<std::uint64_t>(batch));
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.degraded, 0u);
}

}  // namespace
}  // namespace fblas
