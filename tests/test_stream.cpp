// Unit tests for the streaming runtime: channels, scheduler modes,
// deadlock detection, DRAM bank metering, tile walker, streamers.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/workload.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas::stream {
namespace {

// A trivial pass-through module used by several tests.
template <typename T>
Task passthrough(std::int64_t n, int width, Channel<T>& in, Channel<T>& out) {
  std::int64_t idx = 0;
  while (idx < n) {
    const std::int64_t batch = std::min<std::int64_t>(width, n - idx);
    for (std::int64_t k = 0; k < batch; ++k) {
      T v = co_await in.pop();
      co_await out.push(std::move(v));
    }
    idx += batch;
    co_await next_cycle();
  }
}

TEST(Channel, FifoOrderAndStats) {
  Graph g;
  auto& ch = g.channel<int>("c", 4);
  EXPECT_TRUE(ch.try_put(1));
  EXPECT_TRUE(ch.try_put(2));
  int v = 0;
  EXPECT_TRUE(ch.try_take(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ch.try_take(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(ch.try_take(v));
  EXPECT_EQ(ch.total_pushed(), 2u);
  EXPECT_EQ(ch.total_popped(), 2u);
  EXPECT_EQ(ch.peak_occupancy(), 2u);
}

TEST(Channel, CapacityIsBounded) {
  Graph g;
  auto& ch = g.channel<int>("c", 2);
  EXPECT_TRUE(ch.try_put(1));
  EXPECT_TRUE(ch.try_put(2));
  EXPECT_FALSE(ch.try_put(3));
  EXPECT_TRUE(ch.full());
}

TEST(Channel, RingWrapAround) {
  Graph g;
  auto& ch = g.channel<int>("c", 3);
  int v;
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(ch.try_put(round));
    EXPECT_TRUE(ch.try_take(v));
    EXPECT_EQ(v, round);
  }
}

TEST(Channel, RejectsZeroCapacity) {
  Graph g;
  EXPECT_THROW(g.channel<int>("bad", 0), ConfigError);
}

TEST(Graph, RunResetsPreRunChannelStats) {
  // Regression: host-side traffic staged through a channel *before* the
  // run (pre-loads, test setup) used to leak into the run's statistics —
  // an inflated peak that made backpressure readings meaningless. run()
  // now resets per-run stats at entry.
  Graph g;
  auto& ch = g.channel<float>("c", 8);
  float v = 0;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ch.try_put(static_cast<float>(i)));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ch.try_take(v));
  ASSERT_EQ(ch.peak_occupancy(), 5u);  // the pre-run burst
  std::vector<float> in{1, 2}, out;
  g.spawn("feed", feed(in, ch));
  g.spawn("collect", collect<float>(2, ch, out));
  g.run();
  EXPECT_EQ(out, in);
  // Fresh per-run stats: the 5-deep pre-run burst must not survive.
  EXPECT_EQ(ch.total_pushed(), 2u);
  EXPECT_EQ(ch.total_popped(), 2u);
  EXPECT_LE(ch.peak_occupancy(), 2u);
}

TEST(Graph, RunPeakRestartsAtBufferedFill) {
  // Values pre-loaded and NOT drained genuinely occupy the FIFO when the
  // run starts: peak restarts at the current fill, not at zero.
  Graph g;
  auto& ch = g.channel<int>("c", 8);
  ASSERT_TRUE(ch.try_put(41));
  ASSERT_TRUE(ch.try_put(42));
  std::vector<int> out;
  g.spawn("collect", collect<int>(2, ch, out));
  g.run();
  EXPECT_EQ(out, (std::vector<int>{41, 42}));
  EXPECT_EQ(ch.total_pushed(), 0u);  // pre-run pushes are not run traffic
  EXPECT_EQ(ch.total_popped(), 2u);
  EXPECT_EQ(ch.peak_occupancy(), 2u);
}

TEST(Scheduler, OccupancyTraceThrowsWhenNeverEnabled) {
  Graph g(Mode::Cycle);
  auto& ch = g.channel<float>("c", 4);
  std::vector<float> in{1, 2, 3}, out;
  g.spawn("feed", feed(in, ch));
  g.spawn("collect", collect<float>(3, ch, out));
  g.run();
  // Regression: this used to silently index an empty sample table (UB on
  // some inputs, silent empties on others). Now it names the misuse.
  try {
    g.scheduler().occupancy_trace(0);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("never enabled"), std::string::npos);
  }
}

TEST(Scheduler, OccupancyTraceThrowsOnBadChannelIndex) {
  Graph g(Mode::Cycle);
  g.scheduler().enable_occupancy_trace();
  auto& ch = g.channel<float>("c", 4);
  std::vector<float> in{1, 2, 3}, out;
  g.spawn("feed", feed(in, ch));
  g.spawn("collect", collect<float>(3, ch, out));
  g.run();
  EXPECT_NO_THROW(g.scheduler().occupancy_trace(0));
  try {
    g.scheduler().occupancy_trace(7);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
}

TEST(Scheduler, OccupancyTraceEmptyInFunctionalMode) {
  // Enabled but the clock never advances (functional mode): defined-empty
  // samples, not a throw and not an out-of-bounds read.
  Graph g;  // Mode::Functional
  g.scheduler().enable_occupancy_trace();
  auto& ch = g.channel<float>("c", 4);
  std::vector<float> in{1, 2, 3}, out;
  g.spawn("feed", feed(in, ch));
  g.spawn("collect", collect<float>(3, ch, out));
  g.run();
  EXPECT_TRUE(g.scheduler().occupancy_trace(0).empty());
}

TEST(Scheduler, StallAccountingCountsBlockedModules) {
  // A wide producer forced through a capacity-1 channel spends cycles
  // blocked pushing; both the per-channel stall events and the graph's
  // blocked-module-cycle total must see it.
  Graph g(Mode::Cycle);
  auto& ch = g.channel<float>("c", 1);
  std::vector<float> out;
  g.spawn("gen", generate<float>(256, 1.0f, 8, ch));
  g.spawn("collect", collect<float>(256, ch, out));
  g.run();
  EXPECT_EQ(out.size(), 256u);
  EXPECT_GT(ch.stall_events(), 0u);
  EXPECT_GT(g.scheduler().stall_module_cycles(), 0u);
}

TEST(Graph, FeedCollectRoundTrip) {
  Graph g;
  auto& ch = g.channel<float>("c", 8);
  std::vector<float> in{1, 2, 3, 4, 5}, out;
  g.spawn("feed", feed(in, ch));
  g.spawn("collect", collect<float>(5, ch, out));
  g.run();
  EXPECT_EQ(out, in);
}

TEST(Graph, BackpressureThroughTinyChannel) {
  // 1000 elements through a capacity-1 channel must still complete.
  Graph g;
  auto& a = g.channel<int>("a", 1);
  auto& b = g.channel<int>("b", 1);
  std::vector<int> in(1000), out;
  std::iota(in.begin(), in.end(), 0);
  g.spawn("feed", feed(in, a));
  g.spawn("pass", passthrough<int>(1000, 4, a, b));
  g.spawn("collect", collect<int>(1000, b, out));
  g.run();
  EXPECT_EQ(out, in);
}

TEST(Graph, DeadlockDetectedWhenConsumerWantsTooMuch) {
  Graph g;
  auto& ch = g.channel<int>("c", 4);
  std::vector<int> in{1, 2, 3}, out;
  g.spawn("feed", feed(in, ch));
  g.spawn("collect", collect<int>(5, ch, out));  // wants 5, only 3 produced
  try {
    g.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("collect"), std::string::npos);
    EXPECT_NE(msg.find("'c'"), std::string::npos);
  }
}

TEST(Graph, DeadlockDetectedWhenChannelTooSmallForCycle) {
  // A module that needs to push all n before popping any: requires
  // capacity >= n on its loopback, else stalls — the paper's channel
  // sizing rule for non-multitree MDAGs.
  struct Maker {
    static Task loop_module(std::int64_t n, Channel<int>& loop) {
      for (int i = 0; i < n; ++i) co_await loop.push(i);
      for (int i = 0; i < n; ++i) (void)co_await loop.pop();
    }
  };
  {
    Graph g;
    auto& loop = g.channel<int>("loop", 4);
    g.spawn("m", Maker::loop_module(8, loop));
    EXPECT_THROW(g.run(), DeadlockError);
  }
  {
    Graph g;
    auto& loop = g.channel<int>("loop", 8);  // properly sized
    g.spawn("m", Maker::loop_module(8, loop));
    EXPECT_NO_THROW(g.run());
  }
}

TEST(Graph, ModuleExceptionPropagates) {
  struct Maker {
    static Task thrower(Channel<int>& ch) {
      (void)co_await ch.pop();
      throw std::logic_error("module blew up");
    }
  };
  Graph g;
  auto& ch = g.channel<int>("c", 2);
  std::vector<int> in{1};
  g.spawn("feed", feed(in, ch));
  g.spawn("boom", Maker::thrower(ch));
  EXPECT_THROW(g.run(), std::logic_error);
}

TEST(CycleMode, CountsCyclesForWidthBatches) {
  // 64 elements at W=8: producer emits one batch per cycle => ~8 cycles.
  Graph g(Mode::Cycle);
  auto& a = g.channel<float>("a", 16);
  std::vector<float> out;
  g.spawn("gen", generate<float>(64, 1.0f, 8, a));
  g.spawn("sink", collect<float>(64, a, out));
  g.run();
  EXPECT_EQ(out.size(), 64u);
  EXPECT_GE(g.cycles(), 8u);
  EXPECT_LE(g.cycles(), 12u);  // small scheduling slack allowed
}

TEST(CycleMode, WiderIsProportionallyFaster) {
  auto run_width = [](int w) {
    Graph g(Mode::Cycle);
    auto& a = g.channel<float>("a", 512);
    auto& b = g.channel<float>("b", 512);
    g.spawn("gen", generate<float>(4096, 1.0f, w, a));
    g.spawn("pass", passthrough<float>(4096, w, a, b));
    g.spawn("sink", sink<float>(4096, w, b));
    g.run();
    return g.cycles();
  };
  const auto c16 = run_width(16);
  const auto c64 = run_width(64);
  EXPECT_NEAR(static_cast<double>(c16) / static_cast<double>(c64), 4.0, 0.5);
}

TEST(DramBank, MetersBandwidthInCycleMode) {
  // Bank allows 32 bytes/cycle = 8 floats; reader wants W=16 floats/cycle,
  // so it should take ~twice as long as unmetered.
  std::vector<float> data(1024, 2.0f);
  auto run = [&](bool metered) {
    Graph g(Mode::Cycle);
    auto& ch = g.channel<float>("x", 64);
    DramBank* bank = metered ? &g.bank("ddr", 32.0) : nullptr;
    g.spawn("read", read_vector<float>(
                        VectorView<const float>(data.data(), 1024), 1, 16, ch,
                        bank));
    g.spawn("sink", sink<float>(1024, 16, ch));
    g.run();
    return g.cycles();
  };
  const auto fast = run(false);
  const auto slow = run(true);
  EXPECT_NEAR(static_cast<double>(slow) / static_cast<double>(fast), 2.0, 0.4);
}

TEST(DramBank, SharedBudgetCausesContention) {
  // Two readers on one bank each get half the bandwidth.
  std::vector<float> data(1024, 1.0f);
  auto run = [&](int nreaders) {
    Graph g(Mode::Cycle);
    auto& bank = g.bank("ddr", 64.0);  // 16 floats/cycle total
    std::vector<Channel<float>*> chans;
    for (int r = 0; r < nreaders; ++r) {
      auto& ch = g.channel<float>("x" + std::to_string(r), 64);
      chans.push_back(&ch);
      g.spawn("read" + std::to_string(r),
              read_vector<float>(VectorView<const float>(data.data(), 1024),
                                 1, 16, ch, &bank));
      g.spawn("sink" + std::to_string(r), sink<float>(1024, 16, ch));
    }
    g.run();
    return g.cycles();
  };
  const auto one = run(1);
  const auto two = run(2);
  EXPECT_NEAR(static_cast<double>(two) / static_cast<double>(one), 2.0, 0.4);
}

TEST(DramBank, FunctionalModeUnmetered) {
  Graph g(Mode::Functional);
  auto& bank = g.bank("ddr", 1.0);  // 1 byte/cycle would be glacial
  EXPECT_EQ(bank.grant_elems(100, 8), 100);
  EXPECT_EQ(bank.total_bytes(), 800u);
}

TEST(CycleMode, ModuleResumeStatistics) {
  // In cycle mode a balanced producer/consumer pair is scheduled about
  // once per cycle — the utilization diagnostic the scheduler exposes.
  Graph g(Mode::Cycle);
  auto& a = g.channel<float>("a", 32);
  std::vector<float> out;
  const int gen_id = g.spawn("gen", generate<float>(1024, 1.0f, 16, a));
  const int col_id = g.spawn("collect", collect<float>(1024, a, out));
  g.run();
  const auto cycles = g.cycles();
  EXPECT_GE(g.scheduler().module_resumes(gen_id), cycles - 2);
  EXPECT_GE(g.scheduler().module_resumes(col_id), 1u);
}

TEST(CycleMode, OccupancyTraceRecordsBackpressure) {
  // A fast producer against a slow consumer fills the channel; the trace
  // shows the fill level saturating at the capacity.
  Graph g(Mode::Cycle);
  auto& ch = g.channel<float>("hot", 16);
  std::vector<float> out;
  g.scheduler().enable_occupancy_trace();
  g.spawn("gen", generate<float>(512, 1.0f, 32, ch));   // 32/cycle offered
  g.spawn("slow", collect<float>(512, ch, out));        // unbounded pops but
  g.run();                                              // capacity limits
  ASSERT_EQ(g.scheduler().channel_count(), 1u);
  const auto& trace = g.scheduler().occupancy_trace(0);
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.size(), g.cycles());
  std::uint32_t peak = 0;
  for (const auto v : trace) peak = std::max(peak, v);
  EXPECT_LE(peak, 16u);
}

// ---- TileWalker -----------------------------------------------------------

std::vector<std::pair<std::int64_t, std::int64_t>> walk_all(
    std::int64_t rows, std::int64_t cols, TileSchedule s) {
  TileWalker w(rows, cols, s);
  std::vector<std::pair<std::int64_t, std::int64_t>> seq;
  std::int64_t i, j;
  while (w.next(i, j)) seq.emplace_back(i, j);
  return seq;
}

TEST(TileWalker, RowMajorTilesRowMajorElems) {
  // 4x4 matrix, 2x2 tiles: tile (0,0) row-major, then tile (0,1), ...
  auto seq = walk_all(4, 4, {Order::RowMajor, Order::RowMajor, 2, 2});
  ASSERT_EQ(seq.size(), 16u);
  std::vector<std::pair<std::int64_t, std::int64_t>> expect{
      {0, 0}, {0, 1}, {1, 0}, {1, 1},  // tile (0,0)
      {0, 2}, {0, 3}, {1, 2}, {1, 3},  // tile (0,1)
      {2, 0}, {2, 1}, {3, 0}, {3, 1},  // tile (1,0)
      {2, 2}, {2, 3}, {3, 2}, {3, 3},  // tile (1,1)
  };
  EXPECT_EQ(seq, expect);
}

TEST(TileWalker, ColMajorTilesColMajorElems) {
  auto seq = walk_all(4, 4, {Order::ColMajor, Order::ColMajor, 2, 2});
  ASSERT_EQ(seq.size(), 16u);
  std::vector<std::pair<std::int64_t, std::int64_t>> expect{
      {0, 0}, {1, 0}, {0, 1}, {1, 1},  // tile (0,0) col-major elems
      {2, 0}, {3, 0}, {2, 1}, {3, 1},  // tile (1,0)
      {0, 2}, {1, 2}, {0, 3}, {1, 3},  // tile (0,1)
      {2, 2}, {3, 2}, {2, 3}, {3, 3},  // tile (1,1)
  };
  EXPECT_EQ(seq, expect);
}

TEST(TileWalker, VisitsEveryCellExactlyOnce) {
  for (Order to : {Order::RowMajor, Order::ColMajor}) {
    for (Order eo : {Order::RowMajor, Order::ColMajor}) {
      auto seq = walk_all(5, 7, {to, eo, 2, 3});  // non-divisible edges
      EXPECT_EQ(seq.size(), 35u);
      std::set<std::pair<std::int64_t, std::int64_t>> uniq(seq.begin(),
                                                           seq.end());
      EXPECT_EQ(uniq.size(), 35u);
      for (auto [i, j] : seq) {
        EXPECT_GE(i, 0);
        EXPECT_LT(i, 5);
        EXPECT_GE(j, 0);
        EXPECT_LT(j, 7);
      }
    }
  }
}

TEST(TileWalker, SingleTileCoversWholeMatrix) {
  auto seq = walk_all(3, 3, {Order::RowMajor, Order::RowMajor, 8, 8});
  ASSERT_EQ(seq.size(), 9u);
  EXPECT_EQ(seq.front(), (std::pair<std::int64_t, std::int64_t>{0, 0}));
  EXPECT_EQ(seq.back(), (std::pair<std::int64_t, std::int64_t>{2, 2}));
}

TEST(TileWalker, EmptyMatrix) {
  auto seq = walk_all(0, 5, {Order::RowMajor, Order::RowMajor, 2, 2});
  EXPECT_TRUE(seq.empty());
}

// ---- Streamers -------------------------------------------------------------

TEST(Streamers, MatrixRoundTripAllSchedules) {
  Workload wl(3);
  const std::int64_t N = 6, M = 9;
  auto a = wl.matrix<double>(N, M);
  for (Order to : {Order::RowMajor, Order::ColMajor}) {
    for (Order eo : {Order::RowMajor, Order::ColMajor}) {
      TileSchedule s{to, eo, 4, 3};
      std::vector<double> b(N * M, 0.0);
      Graph g;
      auto& ch = g.channel<double>("m", 16);
      g.spawn("read", read_matrix<double>(
                          MatrixView<const double>(a.data(), N, M), s, 1, 8,
                          ch));
      g.spawn("write", write_matrix<double>(MatrixView<double>(b.data(), N, M),
                                            s, 8, ch));
      g.run();
      EXPECT_EQ(a, b) << "schedule tiles=" << to_string(to)
                      << " elems=" << to_string(eo);
    }
  }
}

TEST(Streamers, VectorReplayStreamsRepeatTimes) {
  std::vector<float> v{1, 2, 3};
  Graph g;
  auto& ch = g.channel<float>("v", 4);
  std::vector<float> out;
  g.spawn("read", read_vector<float>(VectorView<const float>(v.data(), 3), 3,
                                     2, ch));
  g.spawn("collect", collect<float>(9, ch, out));
  g.run();
  EXPECT_EQ(out, (std::vector<float>{1, 2, 3, 1, 2, 3, 1, 2, 3}));
}

TEST(Streamers, WriteVectorLastPassPersists) {
  std::vector<float> target(3, 0.0f);
  std::vector<float> stream{1, 2, 3, 10, 20, 30};
  Graph g;
  auto& ch = g.channel<float>("v", 8);
  g.spawn("feed", feed(stream, ch));
  g.spawn("write", write_vector<float>(VectorView<float>(target.data(), 3), 2,
                                       4, ch));
  g.run();
  EXPECT_EQ(target, (std::vector<float>{10, 20, 30}));
}

TEST(Streamers, Fanout2DuplicatesStream) {
  std::vector<int> in{5, 6, 7, 8};
  Graph g;
  auto& a = g.channel<int>("a", 8);
  auto& b = g.channel<int>("b", 8);
  auto& c = g.channel<int>("c", 8);
  std::vector<int> ob, oc;
  g.spawn("feed", feed(in, a));
  g.spawn("fan", fanout2<int>(4, 2, a, b, c));
  g.spawn("cb", collect<int>(4, b, ob));
  g.spawn("cc", collect<int>(4, c, oc));
  g.run();
  EXPECT_EQ(ob, in);
  EXPECT_EQ(oc, in);
}

TEST(Streamers, GenerateAndSinkBalance) {
  Graph g(Mode::Cycle);
  auto& ch = g.channel<double>("g", 32);
  g.spawn("gen", generate<double>(256, 3.5, 16, ch));
  g.spawn("sink", sink<double>(256, 16, ch));
  g.run();
  EXPECT_EQ(ch.total_pushed(), 256u);
  EXPECT_EQ(ch.total_popped(), 256u);
}

}  // namespace
}  // namespace fblas::stream
