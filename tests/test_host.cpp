// Host API integration tests: every routine through the full
// reader -> module -> writer lowering, validated against the reference
// BLAS; device/buffer semantics; sync/async queue behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "refblas/batched.hpp"
#include "refblas/level1.hpp"
#include "refblas/level2.hpp"
#include "refblas/level3.hpp"

namespace fblas::host {
namespace {

template <typename T>
Buffer<T> make_buffer(Device& dev, const std::vector<T>& host, int bank = 0) {
  Buffer<T> b(dev, static_cast<std::int64_t>(host.size()), bank);
  b.write(host);
  return b;
}

TEST(DeviceAllocation, TracksBankUsage) {
  Device dev(sim::DeviceId::Stratix10);
  EXPECT_EQ(dev.bank_count(), 4);
  {
    Buffer<float> b(dev, 1024, 2);
    EXPECT_EQ(dev.allocated_bytes(2), 4096u);
    EXPECT_EQ(dev.allocated_bytes(0), 0u);
  }
  EXPECT_EQ(dev.allocated_bytes(2), 0u);  // released on destruction
  EXPECT_THROW(Buffer<float>(dev, 16, 7), ConfigError);
}

TEST(DeviceAllocation, RejectsOverflowingBank) {
  Device dev(sim::DeviceId::Arria10);
  const std::int64_t too_many =
      static_cast<std::int64_t>(dev.bank_capacity_bytes() / sizeof(double)) + 1;
  EXPECT_THROW(Buffer<double>(dev, too_many, 0), FitError);
}

TEST(BufferTransfer, RoundTrip) {
  Device dev;
  std::vector<float> host{1, 2, 3, 4};
  auto b = make_buffer(dev, host);
  auto back = b.to_host();
  EXPECT_EQ(back, host);
}

TEST(AsyncQueue, CommandsDeferUntilWaited) {
  Device dev;
  Context ctx(dev);
  Workload wl(501);
  auto x = make_buffer(dev, wl.vector<float>(64));
  Event e = ctx.scal_async<float>(64, 2.0f, x, 1);
  EXPECT_FALSE(e.done());
  EXPECT_FALSE(ctx.idle());
  e.wait();
  EXPECT_TRUE(e.done());
  EXPECT_TRUE(ctx.idle());
}

TEST(AsyncQueue, FinishDrainsInOrder) {
  Device dev;
  Context ctx(dev);
  std::vector<float> ones(16, 1.0f);
  auto x = make_buffer(dev, ones);
  ctx.scal_async<float>(16, 2.0f, x, 1);
  ctx.scal_async<float>(16, 3.0f, x, 1);
  ctx.finish();
  EXPECT_FLOAT_EQ(x.to_host()[0], 6.0f);
}

template <typename T>
class HostApi : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(HostApi, Precisions);

TYPED_TEST(HostApi, Level1Routines) {
  using T = TypeParam;
  Device dev;
  Context ctx(dev);
  Workload wl(502);
  const std::int64_t n = 200;
  auto hx = wl.vector<T>(n);
  auto hy = wl.vector<T>(n);

  // scal
  auto x = make_buffer(dev, hx);
  ctx.scal<T>(n, T(2), x);
  auto ex = hx;
  ref::scal<T>(T(2), VectorView<T>(ex.data(), n));
  EXPECT_EQ(x.to_host(), ex);

  // axpy (x now scaled)
  auto y = make_buffer(dev, hy, 1);
  ctx.axpy<T>(n, T(-1), x, 1, y, 1);
  auto ey = hy;
  ref::axpy<T>(T(-1), VectorView<const T>(ex.data(), n),
               VectorView<T>(ey.data(), n));
  EXPECT_EQ(y.to_host(), ey);

  // dot
  const T d = ctx.dot<T>(n, x, 1, y, 1);
  const T ed = ref::dot<T>(VectorView<const T>(ex.data(), n),
                           VectorView<const T>(ey.data(), n));
  EXPECT_NEAR(d, ed, 1e-3);

  // copy + swap
  auto z = Buffer<T>(dev, n, 0);
  ctx.copy<T>(n, x, 1, z, 1);
  EXPECT_EQ(z.to_host(), ex);
  ctx.swap<T>(n, y, 1, z, 1);
  EXPECT_EQ(z.to_host(), ey);
  EXPECT_EQ(y.to_host(), ex);

  // nrm2 / asum / iamax
  EXPECT_NEAR(ctx.nrm2<T>(n, x),
              ref::nrm2<T>(VectorView<const T>(ex.data(), n)), 1e-2);
  EXPECT_NEAR(ctx.asum<T>(n, x),
              ref::asum<T>(VectorView<const T>(ex.data(), n)), 1e-2);
  EXPECT_EQ(ctx.iamax<T>(n, x),
            ref::iamax<T>(VectorView<const T>(ex.data(), n)));
}

TYPED_TEST(HostApi, RotAndRotm) {
  using T = TypeParam;
  Device dev;
  Context ctx(dev);
  Workload wl(503);
  const std::int64_t n = 64;
  auto hx = wl.vector<T>(n);
  auto hy = wl.vector<T>(n);
  auto x = make_buffer(dev, hx);
  auto y = make_buffer(dev, hy);
  T ra = T(3), rb = T(4);
  const auto giv = ctx.rotg<T>(ra, rb);
  EXPECT_NEAR(std::abs(ra), 5.0, 1e-4);
  ctx.rot<T>(n, x, 1, y, 1, giv.c, giv.s);
  auto ex = hx, ey = hy;
  ref::rot<T>(VectorView<T>(ex.data(), n), VectorView<T>(ey.data(), n),
              giv.c, giv.s);
  EXPECT_LT(rel_error(x.to_host(), ex), 1e-5);
  EXPECT_LT(rel_error(y.to_host(), ey), 1e-5);

  T d1 = T(1), d2 = T(1), x1 = T(1);
  const auto p = ctx.rotmg<T>(d1, d2, x1, T(0.5));
  auto x2 = make_buffer(dev, hx);
  auto y2 = make_buffer(dev, hy);
  ctx.rotm<T>(n, x2, 1, y2, 1, p);
  auto ex2 = hx, ey2 = hy;
  ref::rotm<T>(VectorView<T>(ex2.data(), n), VectorView<T>(ey2.data(), n), p);
  EXPECT_LT(rel_error(x2.to_host(), ex2), 1e-5);
}

TEST(HostApiFloatOnly, Sdsdot) {
  Device dev;
  Context ctx(dev);
  std::vector<float> hx{1e8f, 1.0f}, hy{1.0f, 1.0f};
  auto x = make_buffer(dev, hx);
  auto y = make_buffer(dev, hy);
  EXPECT_FLOAT_EQ(ctx.sdsdot(2, 1.0f, x, 1, y, 1),
                  static_cast<float>(1e8 + 2.0));
}

TYPED_TEST(HostApi, StridedVectors) {
  using T = TypeParam;
  Device dev;
  Context ctx(dev);
  // x = [1,_,2,_,3,_] with inc 2.
  std::vector<T> hx{1, 9, 2, 9, 3, 9};
  auto x = make_buffer(dev, hx);
  ctx.scal<T>(3, T(10), x, 2);
  const auto out = x.to_host();
  EXPECT_EQ(out, (std::vector<T>{10, 9, 20, 9, 30, 9}));
}

TYPED_TEST(HostApi, GemvAllTransposesAndTilings) {
  using T = TypeParam;
  Device dev;
  Context ctx(dev);
  ctx.config().width = 8;
  ctx.config().tile_rows = 16;
  ctx.config().tile_cols = 16;
  Workload wl(504);
  const std::int64_t rows = 40, cols = 28;
  auto ha = wl.matrix<T>(rows, cols);
  auto a = make_buffer(dev, ha);
  for (Transpose tr : {Transpose::None, Transpose::Trans}) {
    for (core::MatrixTiling tiling :
         {core::MatrixTiling::TilesByRows, core::MatrixTiling::TilesByCols}) {
      ctx.config().tiling = tiling;
      const std::int64_t xl = tr == Transpose::None ? cols : rows;
      const std::int64_t yl = tr == Transpose::None ? rows : cols;
      auto hx = wl.vector<T>(xl);
      auto hy = wl.vector<T>(yl);
      auto x = make_buffer(dev, hx, 1);
      auto y = make_buffer(dev, hy, 2 % dev.bank_count());
      ctx.gemv<T>(tr, rows, cols, T(1.5), a, x, 1, T(0.5), y, 1);
      auto ey = hy;
      ref::gemv<T>(tr, T(1.5), MatrixView<const T>(ha.data(), rows, cols),
                   VectorView<const T>(hx.data(), xl), T(0.5),
                   VectorView<T>(ey.data(), yl));
      EXPECT_LT(rel_error(y.to_host(), ey), 1e-4)
          << "trans=" << int(tr) << " tiling=" << int(tiling);
    }
  }
}

TYPED_TEST(HostApi, GemvWithStridedVectors) {
  using T = TypeParam;
  Device dev;
  Context ctx(dev);
  ctx.config().width = 4;
  ctx.config().tile_rows = 8;
  ctx.config().tile_cols = 8;
  Workload wl(515);
  const std::int64_t rows = 12, cols = 10;
  auto ha = wl.matrix<T>(rows, cols);
  // x strided by 2, y strided by 3.
  auto hx = wl.vector<T>(2 * cols);
  auto hy = wl.vector<T>(3 * rows);
  auto a = make_buffer(dev, ha);
  auto x = make_buffer(dev, hx, 1);
  auto y = make_buffer(dev, hy, 1);
  ctx.gemv<T>(Transpose::None, rows, cols, T(2), a, x, 2, T(1), y, 3);
  auto ey = hy;
  ref::gemv<T>(Transpose::None, T(2),
               MatrixView<const T>(ha.data(), rows, cols),
               VectorView<const T>(hx.data(), cols, 2), T(1),
               VectorView<T>(ey.data(), rows, 3));
  EXPECT_LT(rel_error(y.to_host(), ey), 1e-4);
  // Elements between the strides are untouched.
  const auto out = y.to_host();
  for (std::int64_t i = 0; i < rows; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(3 * i + 1)],
              hy[static_cast<std::size_t>(3 * i + 1)]);
  }
}

TYPED_TEST(HostApi, TrsvAllOrientations) {
  using T = TypeParam;
  Device dev;
  Context ctx(dev);
  ctx.config().width = 4;
  Workload wl(505);
  const std::int64_t n = 24;
  for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    for (Transpose tr : {Transpose::None, Transpose::Trans}) {
      for (Diag dg : {Diag::NonUnit, Diag::Unit}) {
        auto ha = wl.triangular<T>(n, uplo, dg);
        auto xref = wl.vector<T>(n);
        std::vector<T> hb(n, T(0));
        ref::gemv<T>(tr, T(1), MatrixView<const T>(ha.data(), n, n),
                     VectorView<const T>(xref.data(), n), T(0),
                     VectorView<T>(hb.data(), n));
        auto a = make_buffer(dev, ha);
        auto x = make_buffer(dev, hb, 1);
        ctx.trsv<T>(uplo, tr, dg, n, a, x);
        EXPECT_LT(rel_error(x.to_host(), xref), 1e-3)
            << "uplo=" << int(uplo) << " tr=" << int(tr) << " dg=" << int(dg);
      }
    }
  }
}

TYPED_TEST(HostApi, GerSyrSyr2) {
  using T = TypeParam;
  Device dev;
  Context ctx(dev);
  ctx.config().width = 4;
  ctx.config().tile_rows = 8;
  ctx.config().tile_cols = 8;
  Workload wl(506);
  const std::int64_t n = 20;
  auto ha = wl.matrix<T>(n, n);
  auto hx = wl.vector<T>(n);
  auto hy = wl.vector<T>(n);
  auto x = make_buffer(dev, hx, 1);
  auto y = make_buffer(dev, hy, 1);

  {
    auto a = make_buffer(dev, ha);
    ctx.ger<T>(n, n, T(0.5), x, 1, y, 1, a);
    auto ea = ha;
    ref::ger<T>(T(0.5), VectorView<const T>(hx.data(), n),
                VectorView<const T>(hy.data(), n),
                MatrixView<T>(ea.data(), n, n));
    EXPECT_LT(rel_error(a.to_host(), ea), 1e-4);
  }
  for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    auto a = make_buffer(dev, ha);
    ctx.syr<T>(uplo, n, T(2), x, 1, a);
    auto ea = ha;
    ref::syr<T>(uplo, T(2), VectorView<const T>(hx.data(), n),
                MatrixView<T>(ea.data(), n, n));
    EXPECT_LT(rel_error(a.to_host(), ea), 1e-4) << "syr uplo=" << int(uplo);

    auto a2 = make_buffer(dev, ha);
    ctx.syr2<T>(uplo, n, T(1.5), x, 1, y, 1, a2);
    auto ea2 = ha;
    ref::syr2<T>(uplo, T(1.5), VectorView<const T>(hx.data(), n),
                 VectorView<const T>(hy.data(), n),
                 MatrixView<T>(ea2.data(), n, n));
    EXPECT_LT(rel_error(a2.to_host(), ea2), 1e-4) << "syr2 uplo=" << int(uplo);
  }
}

TYPED_TEST(HostApi, GemmAllTransposes) {
  using T = TypeParam;
  Device dev;
  Context ctx(dev);
  ctx.config().pe_rows = 2;
  ctx.config().pe_cols = 2;
  ctx.config().gemm_tile_rows = 8;
  ctx.config().gemm_tile_cols = 8;
  Workload wl(507);
  const std::int64_t m = 20, n = 12, k = 16;
  auto hc = wl.matrix<T>(m, n);
  for (Transpose ta : {Transpose::None, Transpose::Trans}) {
    for (Transpose tb : {Transpose::None, Transpose::Trans}) {
      auto hA = ta == Transpose::None ? wl.matrix<T>(m, k) : wl.matrix<T>(k, m);
      auto hB = tb == Transpose::None ? wl.matrix<T>(k, n) : wl.matrix<T>(n, k);
      auto a = make_buffer(dev, hA);
      auto b = make_buffer(dev, hB, 1);
      auto c = make_buffer(dev, hc, 2 % dev.bank_count());
      ctx.gemm<T>(ta, tb, m, n, k, T(1.25), a, b, T(0.75), c);
      auto ec = hc;
      ref::gemm<T>(ta, tb, T(1.25),
                   MatrixView<const T>(hA.data(),
                                       ta == Transpose::None ? m : k,
                                       ta == Transpose::None ? k : m),
                   MatrixView<const T>(hB.data(),
                                       tb == Transpose::None ? k : n,
                                       tb == Transpose::None ? n : k),
                   T(0.75), MatrixView<T>(ec.data(), m, n));
      EXPECT_LT(rel_error(c.to_host(), ec), 1e-4)
          << "ta=" << int(ta) << " tb=" << int(tb);
    }
  }
}

TYPED_TEST(HostApi, SyrkAndSyr2k) {
  using T = TypeParam;
  Device dev;
  Context ctx(dev);
  ctx.config().pe_rows = 2;
  ctx.config().pe_cols = 2;
  ctx.config().gemm_tile_rows = 4;
  ctx.config().gemm_tile_cols = 4;
  Workload wl(508);
  const std::int64_t n = 12, k = 8;
  for (Transpose tr : {Transpose::None, Transpose::Trans}) {
    auto hA = tr == Transpose::None ? wl.matrix<T>(n, k) : wl.matrix<T>(k, n);
    auto hB = tr == Transpose::None ? wl.matrix<T>(n, k) : wl.matrix<T>(k, n);
    auto hc = wl.matrix<T>(n, n);
    for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
      auto a = make_buffer(dev, hA);
      auto c = make_buffer(dev, hc, 1);
      ctx.syrk<T>(uplo, tr, n, k, T(2), a, T(0.5), c);
      auto ec = hc;
      ref::syrk<T>(uplo, tr, T(2),
                   MatrixView<const T>(hA.data(),
                                       tr == Transpose::None ? n : k,
                                       tr == Transpose::None ? k : n),
                   T(0.5), MatrixView<T>(ec.data(), n, n));
      // Compare the uplo triangle; the opposite one must be untouched.
      MatrixView<T> E(ec.data(), n, n);
      auto out = c.to_host();
      MatrixView<T> O(out.data(), n, n);
      MatrixView<T> H(hc.data(), n, n);
      for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          const bool tri = uplo == Uplo::Lower ? j <= i : j >= i;
          EXPECT_NEAR(O(i, j), tri ? E(i, j) : H(i, j), 1e-3)
              << "syrk " << i << "," << j;
        }
      }

      auto b = make_buffer(dev, hB);
      auto c2 = make_buffer(dev, hc, 1);
      ctx.syr2k<T>(uplo, tr, n, k, T(1.5), a, b, T(0.25), c2);
      auto ec2 = hc;
      ref::syr2k<T>(uplo, tr, T(1.5),
                    MatrixView<const T>(hA.data(),
                                        tr == Transpose::None ? n : k,
                                        tr == Transpose::None ? k : n),
                    MatrixView<const T>(hB.data(),
                                        tr == Transpose::None ? n : k,
                                        tr == Transpose::None ? k : n),
                    T(0.25), MatrixView<T>(ec2.data(), n, n));
      auto out2 = c2.to_host();
      MatrixView<T> O2(out2.data(), n, n);
      MatrixView<T> E2(ec2.data(), n, n);
      for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          const bool tri = uplo == Uplo::Lower ? j <= i : j >= i;
          EXPECT_NEAR(O2(i, j), tri ? E2(i, j) : H(i, j), 1e-3)
              << "syr2k " << i << "," << j;
        }
      }
    }
  }
}

TYPED_TEST(HostApi, TrsmAllSidesUplosTransposes) {
  using T = TypeParam;
  Device dev;
  Context ctx(dev);
  ctx.config().width = 8;
  Workload wl(509);
  const std::int64_t m = 12, n = 8;
  for (Side side : {Side::Left, Side::Right}) {
    for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
      for (Transpose tr : {Transpose::None, Transpose::Trans}) {
        for (Diag dg : {Diag::NonUnit, Diag::Unit}) {
          const std::int64_t na = side == Side::Left ? m : n;
          auto ha = wl.triangular<T>(na, uplo, dg);
          auto hb = wl.matrix<T>(m, n);
          auto expect = hb;
          ref::trsm<T>(side, uplo, tr, dg, T(1.5),
                       MatrixView<const T>(ha.data(), na, na),
                       MatrixView<T>(expect.data(), m, n));
          auto a = make_buffer(dev, ha);
          auto b = make_buffer(dev, hb, 1);
          ctx.trsm<T>(side, uplo, tr, dg, m, n, T(1.5), a, b);
          EXPECT_LT(rel_error(b.to_host(), expect), 1e-3)
              << "side=" << int(side) << " uplo=" << int(uplo)
              << " tr=" << int(tr) << " dg=" << int(dg);
        }
      }
    }
  }
}

TYPED_TEST(HostApi, SymvInTermsOfGemv) {
  using T = TypeParam;
  Device dev;
  Context ctx(dev);
  ctx.config().width = 8;
  Workload wl(512);
  const std::int64_t n = 24;
  // Build a symmetric matrix; store only one triangle in the buffer the
  // call reads (the other triangle holds garbage to prove it is ignored).
  auto full = wl.matrix<T>(n, n);
  MatrixView<T> F(full.data(), n, n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) F(j, i) = F(i, j);
  }
  for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    auto stored = full;
    MatrixView<T> S(stored.data(), n, n);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        const bool keep = uplo == Uplo::Lower ? j <= i : j >= i;
        if (!keep) S(i, j) = T(99);  // garbage in the unstored triangle
      }
    }
    auto hx = wl.vector<T>(n);
    auto hy = wl.vector<T>(n);
    auto a = make_buffer(dev, stored);
    auto x = make_buffer(dev, hx, 1);
    auto y = make_buffer(dev, hy, 1);
    ctx.symv<T>(uplo, n, T(1.5), a, x, 1, T(0.5), y, 1);
    auto expect = hy;
    ref::gemv<T>(Transpose::None, T(1.5),
                 MatrixView<const T>(full.data(), n, n),
                 VectorView<const T>(hx.data(), n), T(0.5),
                 VectorView<T>(expect.data(), n));
    EXPECT_LT(rel_error(y.to_host(), expect), 1e-4) << "uplo=" << int(uplo);
  }
}

TYPED_TEST(HostApi, TrmvInTermsOfGemv) {
  using T = TypeParam;
  Device dev;
  Context ctx(dev);
  ctx.config().width = 8;
  Workload wl(513);
  const std::int64_t n = 16;
  for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    for (Transpose tr : {Transpose::None, Transpose::Trans}) {
      for (Diag dg : {Diag::NonUnit, Diag::Unit}) {
        auto ha = wl.triangular<T>(n, uplo, dg);
        auto hx = wl.vector<T>(n);
        auto a = make_buffer(dev, ha);
        auto x = make_buffer(dev, hx, 1);
        ctx.trmv<T>(uplo, tr, dg, n, a, x);
        // Oracle: dense gemv on the (unit-adjusted) triangle.
        auto dense = ha;
        if (dg == Diag::Unit) {
          MatrixView<T> D(dense.data(), n, n);
          for (std::int64_t i = 0; i < n; ++i) D(i, i) = T(1);
        }
        std::vector<T> expect(n, T(0));
        ref::gemv<T>(tr, T(1), MatrixView<const T>(dense.data(), n, n),
                     VectorView<const T>(hx.data(), n), T(0),
                     VectorView<T>(expect.data(), n));
        EXPECT_LT(rel_error(x.to_host(), expect), 1e-4)
            << "uplo=" << int(uplo) << " tr=" << int(tr)
            << " dg=" << int(dg);
      }
    }
  }
}

TEST(HostApiCycles, CycleModeRecordsTime) {
  Device dev;
  Context ctx(dev, stream::Mode::Cycle);
  ctx.config().width = 16;
  Workload wl(510);
  const std::int64_t n = 4096;
  auto hx = wl.vector<float>(n);
  auto hy = wl.vector<float>(n);
  auto x = make_buffer(dev, hx, 0);
  auto y = make_buffer(dev, hy, 1);
  const float d = ctx.dot<float>(n, x, 1, y, 1);
  const float ed = ref::dot<float>(VectorView<const float>(hx.data(), n),
                                   VectorView<const float>(hy.data(), n));
  EXPECT_NEAR(d, ed, 1e-2);
  // At W=16 with two separate banks the module needs >= n/16 cycles.
  EXPECT_GE(ctx.last_cycles(), static_cast<std::uint64_t>(n / 16));
  EXPECT_LE(ctx.last_cycles(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(ctx.total_cycles(), ctx.last_cycles());
}

TEST(HostApiCycles, SameBankContentionSlowsDown) {
  // dot with x and y on the same bank halves the effective read rate —
  // the effect behind the AXPYDOT host-layer slowdown (Sec. VI-C).
  Workload wl(511);
  const std::int64_t n = 1 << 14;
  auto hx = wl.vector<float>(n);
  auto hy = wl.vector<float>(n);
  auto run = [&](int bank_y) {
    Device dev;
    Context ctx(dev, stream::Mode::Cycle);
    ctx.config().width = 64;  // wide enough to be memory bound
    auto x = make_buffer(dev, hx, 0);
    auto y = make_buffer(dev, hy, bank_y);
    ctx.dot<float>(n, x, 1, y, 1);
    return ctx.last_cycles();
  };
  const auto separate = run(1);
  const auto shared = run(0);
  EXPECT_GT(static_cast<double>(shared) / static_cast<double>(separate), 1.5);
}

}  // namespace
}  // namespace fblas::host
