// Chaos soak for the device-fleet runtime: a long mixed workload (L1 /
// L2 / L3 / composed MDAG / systolic) on a 3-device pool with EVERY
// fault mode armed at once — launch failures, detected and silent
// transfer corruption, wedges, in-flight channel corruption, PE faults —
// plus a correlated sick-device window on one board. The pool must keep
// the results bit-identical to a clean run (zero wrong results, zero
// degradations) while the per-device ledgers reconcile exactly with the
// global ExecStats, under both executor policies.
//
// Labeled `chaos` (ctest -L chaos); CI runs it under ASan and TSan too.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "apps/atax.hpp"
#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "host/device_pool.hpp"
#include "verify/options.hpp"

namespace fblas {
namespace {

host::RetryPolicy chaos_retry() {
  host::RetryPolicy p;
  p.max_retries = 8;
  p.backoff = std::chrono::microseconds(0);
  p.full_jitter = true;  // deterministic full-jitter (cap 0 -> no sleep)
  p.jitter_seed = 7;
  return p;
}

struct ChaosOutputs {
  std::vector<std::vector<float>> buffers;
  host::ExecStats stats;
};

// The mixed workload: 5 rounds x 8 commands, chained so every round's
// results feed later rounds (a corruption anywhere would surface in the
// final bytes). Initial residency is spread across the fleet so the
// sick-device window on device 1 actually sees traffic.
ChaosOutputs run_chaos(int workers, bool with_faults) {
  const std::int64_t vn = 96;                    // L1 chain
  const std::int64_t gr = 40, gc = vn;           // gemv
  const std::int64_t m3 = 32, n3 = 28, k3 = 24;  // gemm
  const std::int64_t ms = 24, ns = 20, ks = 16;  // systolic
  const std::int64_t an = 24, am = 18;           // atax

  host::DevicePool pool(3);
  host::Context ctx(pool, stream::Mode::Cycle, workers);
  ctx.config().verification = verify::Options::always().in_grid();
  stream::Watchdog wd;
  wd.max_cycles = 1u << 20;  // wedges end in TimeoutError, not a hang
  ctx.set_watchdog(wd);
  ctx.set_retry_policy(chaos_retry());
  if (with_faults) {
    host::FaultConfig faults;
    faults.seed = 23;
    faults.launch_fail_rate = 0.02;
    faults.corrupt_rate = 0.02;
    faults.wedge_rate = 0.004;
    faults.silent_corrupt_rate = 0.02;
    faults.channel_corrupt_rate = 0.01;
    faults.pe_fault_rate = 0.06;
    // Device 1 runs sick for an early stretch of command seqs: x25 turns
    // the launch+corrupt mass into certainty, so every in-window attempt
    // placed there fails fast (and cheaply) until its breaker opens.
    faults.device_fault_window.device = 1;
    faults.device_fault_window.begin = 8;
    faults.device_fault_window.end = 24;
    faults.device_fault_window.multiplier = 25.0;
    pool.inject_faults(faults);
  }

  Workload wl(60);
  host::Buffer<float> v0(pool.device(0), vn, 0), v1(pool.device(0), vn, 1);
  host::Buffer<float> ga(pool.device(0), gr * gc, 0);
  host::Buffer<float> gy(pool.device(0), gr, 2);
  host::Buffer<float> ma(pool.device(1), m3 * k3, 0);
  host::Buffer<float> mb(pool.device(1), k3 * n3, 1);
  host::Buffer<float> mc(pool.device(1), m3 * n3, 2);
  host::Buffer<float> sa(pool.device(2), ms * ks, 0);
  host::Buffer<float> sb(pool.device(2), ks * ns, 1);
  host::Buffer<float> sc(pool.device(2), ms * ns, 2);
  host::Buffer<float> acc(pool.device(0), ms * ns, 3);
  host::Buffer<float> aa(pool.device(2), an * am, 0);
  host::Buffer<float> ax(pool.device(2), am, 1);
  host::Buffer<float> ay(pool.device(2), am, 2);
  host::Buffer<float> acc2(pool.device(0), am, 3);
  v0.write(wl.vector<float>(vn));
  v1.write(wl.vector<float>(vn));
  ga.write(wl.matrix<float>(gr, gc));
  gy.write(std::vector<float>(static_cast<std::size_t>(gr), 0.0f));
  ma.write(wl.matrix<float>(m3, k3));
  mb.write(wl.matrix<float>(k3, n3));
  mc.write(wl.matrix<float>(m3, n3));
  sa.write(wl.matrix<float>(ms, ks));
  sb.write(wl.matrix<float>(ks, ns));
  sc.write(std::vector<float>(static_cast<std::size_t>(ms * ns), 0.0f));
  acc.write(std::vector<float>(static_cast<std::size_t>(ms * ns), 0.0f));
  aa.write(wl.matrix<float>(an, am));
  ax.write(wl.vector<float>(am));
  ay.write(std::vector<float>(static_cast<std::size_t>(am), 0.0f));
  acc2.write(std::vector<float>(static_cast<std::size_t>(am), 0.0f));

  for (int round = 0; round < 5; ++round) {
    ctx.scal_async<float>(vn, 1.01f, v0, 1);
    ctx.axpy_async<float>(vn, 0.5f, v0, 1, v1, 1);
    ctx.gemv_async<float>(Transpose::None, gr, gc, 1.0f, ga, v1, 1, 0.5f,
                          gy, 1);
    ctx.gemm_async<float>(Transpose::None, Transpose::None, m3, n3, k3,
                          1.0f, ma, mb, 0.5f, mc);
    ctx.gemm_systolic_async<float>(ms, ns, ks, sa, sb, sc);
    ctx.axpy_async<float>(ms * ns, 0.25f, sc, 1, acc, 1);
    apps::atax_composed_async<float>(ctx, an, am, aa, ax, ay);
    ctx.axpy_async<float>(am, 0.2f, ay, 1, acc2, 1);
  }
  ctx.finish();

  ChaosOutputs out;
  for (const host::Buffer<float>* b :
       {&v0, &v1, &gy, &mc, &sc, &acc, &ay, &acc2}) {
    out.buffers.push_back(b->to_host());
  }
  out.stats = ctx.exec_stats();
  return out;
}

void expect_reconciled(const host::ExecStats& stats) {
  ASSERT_EQ(stats.per_device.size(), 3u);
  std::uint64_t faults = 0, executed = 0, failed = 0, rejects = 0,
                attempts = 0;
  for (const host::PerDeviceStats& d : stats.per_device) {
    faults += d.faults;
    executed += d.executed;
    failed += d.failed_attempts;
    rejects += d.verify_rejects;
    attempts += d.attempts;
  }
  // The fleet-wide ledgers reconcile exactly with the global counters:
  // nothing is double-counted, nothing vanishes.
  EXPECT_EQ(faults, stats.faults_injected);
  EXPECT_EQ(rejects, stats.verify_failures);
  EXPECT_EQ(executed, stats.executed - stats.degraded);
  // Every retry was triggered by a device failure or a checker rejection
  // (no command failed terminally in this soak).
  EXPECT_EQ(failed + rejects, stats.retries);
  // Every placement ended as exactly one accepted / failed / rejected.
  EXPECT_EQ(attempts, executed + failed + rejects);
}

TEST(Chaos, MixedWorkloadAllFaultModesSerial) {
  const ChaosOutputs clean = run_chaos(0, false);
  const ChaosOutputs chaotic = run_chaos(0, true);

  // Zero wrong results: bit-identical to the clean fleet despite every
  // fault mode firing, and nothing fell back to the CPU.
  EXPECT_EQ(chaotic.buffers, clean.buffers);
  EXPECT_EQ(chaotic.stats.degraded, 0u);
  EXPECT_EQ(clean.stats.retries, 0u);
  EXPECT_EQ(clean.stats.faults_injected, 0u);

  // The soak actually exercised the machinery.
  EXPECT_GT(chaotic.stats.faults_injected, 0u);
  EXPECT_GT(chaotic.stats.retries, 0u);
  EXPECT_GT(chaotic.stats.verified, 0u);
  // The sick window opened device 1's breaker and its buffers moved.
  EXPECT_GE(chaotic.stats.breaker_opens, 1u);
  EXPECT_GE(chaotic.stats.per_device[1].breaker_opens, 1u);
  EXPECT_GE(chaotic.stats.migrations, 1u);
  EXPECT_GT(chaotic.stats.migrated_bytes, 0u);

  expect_reconciled(clean.stats);
  expect_reconciled(chaotic.stats);
}

TEST(Chaos, MixedWorkloadAllFaultModesConcurrent) {
  // The same soak on the 4-worker executor: placement tick interleavings
  // (and thus which device a sick-window attempt lands on) may differ,
  // but the results must still be bit-identical to the clean run and the
  // ledgers must still reconcile.
  const ChaosOutputs clean = run_chaos(0, false);
  const ChaosOutputs chaotic = run_chaos(4, true);

  EXPECT_EQ(chaotic.buffers, clean.buffers);
  EXPECT_EQ(chaotic.stats.degraded, 0u);
  EXPECT_GT(chaotic.stats.faults_injected, 0u);
  EXPECT_GT(chaotic.stats.retries, 0u);
  expect_reconciled(chaotic.stats);

  // And a clean concurrent run matches the clean serial run bit-for-bit.
  const ChaosOutputs clean4 = run_chaos(4, false);
  EXPECT_EQ(clean4.buffers, clean.buffers);
  EXPECT_EQ(clean4.stats.retries, 0u);
}

}  // namespace
}  // namespace fblas
