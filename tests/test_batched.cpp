// Tests for the fully-unrolled batched modules and their host API (the
// Table V circuits): numerical agreement with the batched reference
// routines, the one-problem-per-cycle throughput property, and config
// validation.
#include <gtest/gtest.h>

#include "common/workload.hpp"
#include "fblas/batched.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "refblas/batched.hpp"
#include "stream/graph.hpp"

namespace fblas::core {
namespace {

using stream::Graph;
using stream::Mode;

template <typename T>
class Batched : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(Batched, Precisions);

TYPED_TEST(Batched, GemmModuleMatchesReference) {
  using T = TypeParam;
  Workload wl(901);
  const std::int64_t s = 4, batch = 64;
  auto a = wl.vector<T>(batch * s * s);
  auto b = wl.vector<T>(batch * s * s);
  std::vector<T> expect(batch * s * s, T(0));
  ref::gemm_batched<T>(batch, s, T(1.5), a.data(), b.data(), T(0),
                       expect.data());
  Graph g;
  auto& ca = g.channel<T>("A", 64);
  auto& cb = g.channel<T>("B", 64);
  auto& cc = g.channel<T>("C", 64);
  std::vector<T> got(batch * s * s, T(0));
  g.spawn("read_A", read_batched<T>(a.data(), s * s, batch, ca));
  g.spawn("read_B", read_batched<T>(b.data(), s * s, batch, cb));
  g.spawn("gemm", gemm_batched_unrolled<T>({s}, batch, T(1.5), ca, cb, cc));
  g.spawn("store", write_batched<T>(got.data(), s * s, batch, cc));
  g.run();
  EXPECT_LT(rel_error(got, expect), 1e-5);
}

TYPED_TEST(Batched, OneProblemPerCycle) {
  using T = TypeParam;
  Workload wl(902);
  const std::int64_t s = 4, batch = 256;
  auto a = wl.vector<T>(batch * s * s);
  auto b = wl.vector<T>(batch * s * s);
  Graph g(Mode::Cycle);
  auto& ca = g.channel<T>("A", 128);
  auto& cb = g.channel<T>("B", 128);
  auto& cc = g.channel<T>("C", 128);
  std::vector<T> got(batch * s * s, T(0));
  g.spawn("read_A", read_batched<T>(a.data(), s * s, batch, ca));
  g.spawn("read_B", read_batched<T>(b.data(), s * s, batch, cb));
  g.spawn("gemm", gemm_batched_unrolled<T>({s}, batch, T(1), ca, cb, cc));
  g.spawn("store", write_batched<T>(got.data(), s * s, batch, cc));
  g.run();
  // The fully-unrolled pipeline retires ~one problem per cycle (small
  // constant factor for pipeline fill and scheduling).
  EXPECT_LE(g.cycles(), static_cast<std::uint64_t>(3 * batch));
  EXPECT_GE(g.cycles(), static_cast<std::uint64_t>(batch));
}

TYPED_TEST(Batched, TrsmModuleMatchesReference) {
  using T = TypeParam;
  Workload wl(903);
  const std::int64_t s = 4, batch = 32;
  std::vector<T> a, xref, bmat;
  for (std::int64_t i = 0; i < batch; ++i) {
    auto ai = wl.triangular<T>(s, Uplo::Lower, Diag::NonUnit);
    auto xi = wl.matrix<T>(s, s);
    std::vector<T> bi(s * s, T(0));
    ref::gemm_batched<T>(1, s, T(1), ai.data(), xi.data(), T(0), bi.data());
    a.insert(a.end(), ai.begin(), ai.end());
    xref.insert(xref.end(), xi.begin(), xi.end());
    bmat.insert(bmat.end(), bi.begin(), bi.end());
  }
  Graph g;
  auto& ca = g.channel<T>("A", 64);
  auto& cb = g.channel<T>("B", 64);
  auto& cx = g.channel<T>("X", 64);
  std::vector<T> got(batch * s * s, T(0));
  // Stream the triangles (row-major lower part of each dense A).
  struct Maker {
    static stream::Task triangles(const T* data, std::int64_t s,
                                  std::int64_t batch,
                                  stream::Channel<T>& out) {
      for (std::int64_t inv = 0; inv < batch; ++inv) {
        const T* p = data + inv * s * s;
        for (std::int64_t i = 0; i < s; ++i) {
          for (std::int64_t j = 0; j <= i; ++j) {
            co_await out.push(p[i * s + j]);
          }
        }
      }
    }
  };
  g.spawn("read_A", Maker::triangles(a.data(), s, batch, ca));
  g.spawn("read_B", read_batched<T>(bmat.data(), s * s, batch, cb));
  g.spawn("trsm", trsm_batched_unrolled<T>({s}, batch, T(1), ca, cb, cx));
  g.spawn("store", write_batched<T>(got.data(), s * s, batch, cx));
  g.run();
  EXPECT_LT(rel_error(got, xref), 1e-3);
}

TYPED_TEST(Batched, HostApiGemmBatched) {
  using T = TypeParam;
  Workload wl(904);
  const std::int64_t s = 4, batch = 48;
  host::Device dev;
  host::Context ctx(dev);
  auto ha = wl.vector<T>(batch * s * s);
  auto hb = wl.vector<T>(batch * s * s);
  host::Buffer<T> a(dev, batch * s * s, 0);
  host::Buffer<T> b(dev, batch * s * s, 1);
  host::Buffer<T> c(dev, batch * s * s, 2 % dev.bank_count());
  a.write(ha);
  b.write(hb);
  ctx.gemm_batched<T>(s, batch, T(2), a, b, c);
  std::vector<T> expect(batch * s * s, T(0));
  ref::gemm_batched<T>(batch, s, T(2), ha.data(), hb.data(), T(0),
                       expect.data());
  EXPECT_LT(rel_error(c.to_host(), expect), 1e-5);
}

TYPED_TEST(Batched, HostApiTrsmBatched) {
  using T = TypeParam;
  Workload wl(905);
  const std::int64_t s = 4, batch = 24;
  host::Device dev;
  host::Context ctx(dev);
  std::vector<T> ha, xref, hb;
  for (std::int64_t i = 0; i < batch; ++i) {
    auto ai = wl.triangular<T>(s, Uplo::Lower, Diag::NonUnit);
    auto xi = wl.matrix<T>(s, s);
    std::vector<T> bi(s * s, T(0));
    ref::gemm_batched<T>(1, s, T(1), ai.data(), xi.data(), T(0), bi.data());
    ha.insert(ha.end(), ai.begin(), ai.end());
    xref.insert(xref.end(), xi.begin(), xi.end());
    hb.insert(hb.end(), bi.begin(), bi.end());
  }
  host::Buffer<T> a(dev, batch * s * s, 0);
  host::Buffer<T> x(dev, batch * s * s, 1);
  a.write(ha);
  x.write(hb);
  ctx.trsm_batched<T>(s, batch, T(1), a, x);
  EXPECT_LT(rel_error(x.to_host(), xref), 1e-3);
}

TYPED_TEST(Batched, ConfigValidation) {
  using T = TypeParam;
  (void)sizeof(T);
  BatchedConfig bad{0};
  EXPECT_THROW(bad.validate(), ConfigError);
  BatchedConfig too_big{64};
  EXPECT_THROW(too_big.validate(), ConfigError);
  EXPECT_NO_THROW(BatchedConfig{4}.validate());
}

TYPED_TEST(Batched, ZeroBatchIsANoop) {
  using T = TypeParam;
  Graph g;
  auto& ca = g.channel<T>("A", 4);
  auto& cb = g.channel<T>("B", 4);
  auto& cc = g.channel<T>("C", 4);
  g.spawn("gemm", gemm_batched_unrolled<T>({4}, 0, T(1), ca, cb, cc));
  EXPECT_NO_THROW(g.run());
}

}  // namespace
}  // namespace fblas::core
