// Tests for the automatic MDAG planner (the paper's future-work item):
// channel-depth inference for non-multitrees and greedy sequential
// partitioning, exercised on the four paper compositions and on synthetic
// graphs.
#include <gtest/gtest.h>

#include "apps/atax.hpp"
#include "apps/axpydot.hpp"
#include "apps/bicg.hpp"
#include "apps/gemver.hpp"
#include "common/error.hpp"
#include "common/workload.hpp"
#include "mdag/auto_partition.hpp"
#include "mdag/io_volume.hpp"
#include "mdag/validity.hpp"

namespace fblas::mdag {
namespace {

TEST(AutoPlan, ValidCompositionStaysFullyStreaming) {
  const auto g = apps::axpydot_mdag(1024);
  const auto plan = derive_plan(g);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.components.size(), 1u);
  EXPECT_TRUE(plan.sizings.empty());
  EXPECT_EQ(plan.io_ops, 3 * 1024 + 1);
  EXPECT_NE(plan.explanation.find("fully streaming"), std::string::npos);
}

TEST(AutoPlan, BicgIsAlreadyValid) {
  const auto plan = derive_plan(apps::bicg_mdag(512, 512, 64));
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.components.size(), 1u);
}

TEST(AutoPlan, AtaxChannelSizingMatchesPaperFormula) {
  // ATAX with N = M = 1024, tiles 64: the direct A channel into the
  // transposed GEMV needs >= M * TN = 1024 * 64 elements (Sec. V-B).
  const auto g = apps::atax_mdag(1024, 1024, 64);
  const auto sizings = required_channel_depths(g);
  ASSERT_EQ(sizings.size(), 1u);
  const Edge& e = g.edge(sizings[0].edge);
  EXPECT_EQ(g.node(e.from).name, "read_A");
  EXPECT_EQ(g.node(e.to).name, "gemv_T");
  EXPECT_EQ(sizings[0].min_depth, 1024 * 64);
}

TEST(AutoPlan, AtaxPlansSizingWhenBudgetAllows) {
  const auto g = apps::atax_mdag(1024, 1024, 64);
  PlanOptions opt;
  opt.max_channel_depth = 1024 * 64;  // exactly enough
  const auto plan = derive_plan(g, opt);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.components.size(), 1u);
  ASSERT_EQ(plan.sizings.size(), 1u);
  EXPECT_EQ(plan.sizings[0].min_depth, 1024 * 64);
  EXPECT_NE(plan.explanation.find("sized channel"), std::string::npos);
}

TEST(AutoPlan, AtaxSplitsWhenBufferTooLarge) {
  const auto g = apps::atax_mdag(4096, 4096, 64);
  PlanOptions opt;
  opt.max_channel_depth = 1024;  // far below 4096 * 64
  const auto plan = derive_plan(g, opt);
  EXPECT_TRUE(plan.feasible);
  EXPECT_GE(plan.components.size(), 2u);
  // Every component individually valid.
  for (const auto& c : plan.components) {
    EXPECT_TRUE(validate(component_subgraph(g, c)).valid);
  }
  // The split pays more I/O than the (infeasible) fully-streamed version
  // but is a real plan.
  EXPECT_GT(plan.io_ops, total_io_ops(g));
}

TEST(AutoPlan, GemverSplitsIntoTwoComponentsLikeFig9) {
  const auto g = apps::gemver_mdag(1024, 64);
  PlanOptions opt;
  opt.prefer_sizing = false;  // force the Fig. 9 schedule
  const auto plan = derive_plan(g, opt);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.components.size(), 2u);
  // I/O ~ 3N^2, completion ~ 2N^2 — the Sec. V-C numbers.
  const double n2 = 1024.0 * 1024.0;
  EXPECT_NEAR(static_cast<double>(plan.io_ops) / n2, 3.0, 0.1);
  EXPECT_NEAR(plan.cycles / n2, 2.0, 0.1);
}

TEST(AutoPlan, GemverSizingAlternativeAlsoWorks) {
  // With a (hypothetically) huge on-chip budget, GEMVER could stream
  // fully by buffering B on the direct edge.
  const auto g = apps::gemver_mdag(256, 64);
  PlanOptions opt;
  opt.max_channel_depth = 256 * 64;  // one row of tiles of B
  const auto plan = derive_plan(g, opt);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.components.size(), 1u);
  EXPECT_FALSE(plan.sizings.empty());
}

TEST(AutoPlan, EdgeInvalidGraphsAreRejected) {
  Mdag g;
  const int a = g.add_interface("a");
  const int b = g.add_compute("b", RoutineKind::Scal, 1);
  g.connect(a, b, StreamSig::vec(10), StreamSig::vec(20));
  EXPECT_THROW(derive_plan(g), ConfigError);
}

TEST(AutoPlan, DeepDiamondChain) {
  // a -> b -> c -> d plus a shortcut b -> d: one disjoint pair (b, d).
  Mdag g;
  const int src = g.add_interface("src");
  const int b = g.add_compute("b", RoutineKind::Scal, 1);
  const int c = g.add_compute("c", RoutineKind::Scal, 1);
  const int d = g.add_compute("d", RoutineKind::Axpy, 1);
  const int sink = g.add_interface("sink");
  g.connect(src, b, StreamSig::vec(100));
  g.connect(b, c, StreamSig::vec(100));
  g.connect(c, d, StreamSig::vec(100));
  g.connect(b, d, StreamSig::vec(100));
  g.connect(d, sink, StreamSig::vec(100));
  EXPECT_FALSE(validate(g).valid);
  const auto sizings = required_channel_depths(g);
  ASSERT_EQ(sizings.size(), 1u);
  // The shortcut edge b -> d must buffer the vector (lag = full stream).
  EXPECT_EQ(g.edge(sizings[0].edge).from, b);
  EXPECT_EQ(g.edge(sizings[0].edge).to, d);
  EXPECT_EQ(sizings[0].min_depth, 100);
  const auto plan = derive_plan(g);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.components.size(), 1u);  // sized, small enough
}

TEST(AutoPlan, FirstOutputLagFormulas) {
  const stream::TileSchedule by_rows{Order::RowMajor, Order::RowMajor, 64,
                                     64};
  const stream::TileSchedule by_cols{Order::ColMajor, Order::RowMajor, 64,
                                     64};
  EXPECT_EQ(StreamSig::mat(1024, 2048, by_rows).first_output_lag(),
            2048 * 64);
  EXPECT_EQ(StreamSig::mat(1024, 2048, by_cols).first_output_lag(),
            1024 * 64);
  EXPECT_EQ(StreamSig::vec(777).first_output_lag(), 777);
  // Tiles larger than the matrix are clamped.
  EXPECT_EQ(StreamSig::mat(16, 16, by_rows).first_output_lag(), 16 * 16);
}

TEST(AutoPlan, PlannedSizingActuallyRunsAtax) {
  // End-to-end: feed the planner's channel depth into the real streaming
  // composition and watch it complete.
  const std::int64_t n = 40, m = 24, tile = 8;
  const auto g = apps::atax_mdag(n, m, tile);
  const auto sizings = required_channel_depths(g);
  ASSERT_EQ(sizings.size(), 1u);
  Workload wl(808);
  auto a = wl.matrix<float>(n, m);
  auto x = wl.vector<float>(m);
  const auto got = apps::atax_streaming<float>(
      sim::stratix10(), stream::Mode::Functional, 4, tile,
      sizings[0].min_depth + 4 * 4,  // planner depth + fan-out slack
      MatrixView<const float>(a.data(), n, m),
      VectorView<const float>(x.data(), m));
  const auto expect = apps::atax_cpu<float>(
      MatrixView<const float>(a.data(), n, m),
      VectorView<const float>(x.data(), m));
  EXPECT_LT(rel_error(got.y, expect), 1e-3);
}

}  // namespace
}  // namespace fblas::mdag
