// ABFT result verification: checksum checkers at the unit level, and the
// end-to-end silent-data-corruption story — an unverified run provably
// misses silent faults, a verified run catches every one and recovers
// bit-identically through the existing retry/rollback/fallback runtime.
//
// Silent corruption decisions hash (seed, command seq, attempt), like
// every other injected fault, so each test here is deterministic.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "refblas/level1.hpp"
#include "refblas/level2.hpp"
#include "refblas/level3.hpp"
#include "verify/abft.hpp"
#include "verify/policy.hpp"

namespace fblas {
namespace {

constexpr double kScale = 32.0;  // default RoutineConfig.verify_tolerance_scale

host::RetryPolicy fast_retry(int max_retries, bool cpu_fallback = false) {
  host::RetryPolicy p;
  p.max_retries = max_retries;
  p.backoff = std::chrono::microseconds(0);
  p.cpu_fallback = cpu_fallback;
  return p;
}

// --- Checker unit tests --------------------------------------------------
// Each checker must accept the reference result of the routine it guards
// (no false positives on clean data) and reject a single corrupted
// element (no false negatives on damage far above rounding).

TEST(VerifyCheckers, GemmRowAndColumnChecksums) {
  const std::int64_t m = 12, n = 10, k = 8;
  Workload wl(70);
  const auto ha = wl.matrix<double>(m, k);
  const auto hb = wl.matrix<double>(k, n);
  const auto hc = wl.matrix<double>(m, n);
  const auto chk = verify::gemm_prepare<double>(
      Transpose::None, Transpose::None, m, n, k, 1.5,
      MatrixView<const double>(ha.data(), m, k),
      MatrixView<const double>(hb.data(), k, n), 0.5,
      MatrixView<const double>(hc.data(), m, n));

  auto c = hc;
  ref::gemm(Transpose::None, Transpose::None, 1.5,
            MatrixView<const double>(ha.data(), m, k),
            MatrixView<const double>(hb.data(), k, n), 0.5,
            MatrixView<double>(c.data(), m, n));
  EXPECT_NO_THROW(verify::gemm_check<double>(
      chk, MatrixView<const double>(c.data(), m, n), kScale));

  auto bad = c;
  bad[static_cast<std::size_t>(3 * n + 7)] += 1e-3;
  try {
    verify::gemm_check<double>(chk, MatrixView<const double>(bad.data(), m, n),
                               kScale);
    FAIL() << "expected VerificationError";
  } catch (const VerificationError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("gemm"), std::string::npos);
    EXPECT_NE(msg.find("silent data corruption"), std::string::npos);
  }
}

TEST(VerifyCheckers, GemmTransposedOperandsChecksum) {
  const std::int64_t m = 9, n = 11, k = 7;
  Workload wl(71);
  const auto ha = wl.matrix<double>(k, m);  // A^T storage
  const auto hb = wl.matrix<double>(n, k);  // B^T storage
  const auto hc = wl.matrix<double>(m, n);
  const auto chk = verify::gemm_prepare<double>(
      Transpose::Trans, Transpose::Trans, m, n, k, -0.75,
      MatrixView<const double>(ha.data(), k, m),
      MatrixView<const double>(hb.data(), n, k), 2.0,
      MatrixView<const double>(hc.data(), m, n));

  auto c = hc;
  ref::gemm(Transpose::Trans, Transpose::Trans, -0.75,
            MatrixView<const double>(ha.data(), k, m),
            MatrixView<const double>(hb.data(), n, k), 2.0,
            MatrixView<double>(c.data(), m, n));
  EXPECT_NO_THROW(verify::gemm_check<double>(
      chk, MatrixView<const double>(c.data(), m, n), kScale));
  c[1] *= 1.0 + 1e-6;
  EXPECT_THROW(verify::gemm_check<double>(
                   chk, MatrixView<const double>(c.data(), m, n), kScale),
               VerificationError);
}

TEST(VerifyCheckers, SyrkTriangleMaskedChecksums) {
  const std::int64_t n = 10, k = 6;
  Workload wl(72);
  const auto ha = wl.matrix<double>(n, k);
  const auto hc = wl.matrix<double>(n, n);
  const auto chk = verify::syrk_prepare<double>(
      Uplo::Lower, Transpose::None, n, k, 1.25,
      MatrixView<const double>(ha.data(), n, k), 0.5,
      MatrixView<const double>(hc.data(), n, n));

  auto c = hc;
  ref::syrk(Uplo::Lower, Transpose::None, 1.25,
            MatrixView<const double>(ha.data(), n, k), 0.5,
            MatrixView<double>(c.data(), n, n));
  EXPECT_NO_THROW(verify::check_rowsums<double>(
      chk, "syrk", MatrixView<const double>(c.data(), n, n), kScale));

  // Corruption inside the stored (lower) triangle is caught...
  auto bad = c;
  bad[static_cast<std::size_t>(7 * n + 2)] += 1e-4;
  EXPECT_THROW(
      verify::check_rowsums<double>(
          chk, "syrk", MatrixView<const double>(bad.data(), n, n), kScale),
      VerificationError);
  // ...while the strict upper triangle is outside SYRK's write-set, so
  // the tri mask must ignore it (BLAS never touches it).
  bad = c;
  bad[static_cast<std::size_t>(2 * n + 7)] += 1e+4;
  EXPECT_NO_THROW(verify::check_rowsums<double>(
      chk, "syrk", MatrixView<const double>(bad.data(), n, n), kScale));
}

TEST(VerifyCheckers, Syr2kUpperChecksums) {
  const std::int64_t n = 8, k = 5;
  Workload wl(73);
  const auto ha = wl.matrix<double>(n, k);
  const auto hb = wl.matrix<double>(n, k);
  const auto hc = wl.matrix<double>(n, n);
  const auto chk = verify::syr2k_prepare<double>(
      Uplo::Upper, Transpose::None, n, k, 0.5,
      MatrixView<const double>(ha.data(), n, k),
      MatrixView<const double>(hb.data(), n, k), 1.0,
      MatrixView<const double>(hc.data(), n, n));

  auto c = hc;
  ref::syr2k(Uplo::Upper, Transpose::None, 0.5,
             MatrixView<const double>(ha.data(), n, k),
             MatrixView<const double>(hb.data(), n, k), 1.0,
             MatrixView<double>(c.data(), n, n));
  EXPECT_NO_THROW(verify::check_rowsums<double>(
      chk, "syr2k", MatrixView<const double>(c.data(), n, n), kScale));
  c[static_cast<std::size_t>(3 * n + 6)] -= 1e-3;  // stored upper element
  EXPECT_THROW(
      verify::check_rowsums<double>(
          chk, "syr2k", MatrixView<const double>(c.data(), n, n), kScale),
      VerificationError);
}

TEST(VerifyCheckers, TrsmResidualChecksums) {
  const std::int64_t m = 12, n = 6;
  Workload wl(74);
  auto ha = wl.matrix<double>(m, m);
  // Diagonally dominant lower triangle: a well-conditioned solve.
  for (std::int64_t i = 0; i < m; ++i) ha[static_cast<std::size_t>(i * m + i)] += m;
  const auto hb = wl.matrix<double>(m, n);
  const auto chk = verify::trsm_prepare<double>(
      Side::Left, m, n, 2.0, MatrixView<const double>(hb.data(), m, n));

  auto x = hb;
  ref::trsm(Side::Left, Uplo::Lower, Transpose::None, Diag::NonUnit, 2.0,
            MatrixView<const double>(ha.data(), m, m),
            MatrixView<double>(x.data(), m, n));
  EXPECT_NO_THROW(verify::trsm_check<double>(
      chk, Side::Left, Uplo::Lower, Transpose::None, Diag::NonUnit, m, n,
      MatrixView<const double>(ha.data(), m, m),
      MatrixView<const double>(x.data(), m, n), kScale));
  x[static_cast<std::size_t>(5 * n + 3)] += 1e-4;
  EXPECT_THROW(verify::trsm_check<double>(
                   chk, Side::Left, Uplo::Lower, Transpose::None,
                   Diag::NonUnit, m, n,
                   MatrixView<const double>(ha.data(), m, m),
                   MatrixView<const double>(x.data(), m, n), kScale),
               VerificationError);
}

TEST(VerifyCheckers, GemvAndGerChecksums) {
  const std::int64_t rows = 14, cols = 9;
  Workload wl(75);
  const auto ha = wl.matrix<double>(rows, cols);
  const auto hx = wl.vector<double>(cols);
  const auto hy = wl.vector<double>(rows);

  const auto gv = verify::gemv_prepare<double>(
      Transpose::None, rows, cols, 1.1,
      MatrixView<const double>(ha.data(), rows, cols),
      VectorView<const double>(hx.data(), cols), -0.4,
      VectorView<const double>(hy.data(), rows));
  auto y = hy;
  ref::gemv(Transpose::None, 1.1, MatrixView<const double>(ha.data(), rows, cols),
            VectorView<const double>(hx.data(), cols), -0.4,
            VectorView<double>(y.data(), rows));
  EXPECT_NO_THROW(verify::check_sum<double>(
      gv, "gemv", VectorView<const double>(y.data(), rows), kScale));
  y[4] += 1e-5;
  EXPECT_THROW(verify::check_sum<double>(
                   gv, "gemv", VectorView<const double>(y.data(), rows),
                   kScale),
               VerificationError);

  const auto hyc = wl.vector<double>(cols);
  const auto gr = verify::ger_prepare<double>(
      rows, cols, 0.8, VectorView<const double>(hy.data(), rows),
      VectorView<const double>(hyc.data(), cols),
      MatrixView<const double>(ha.data(), rows, cols));
  auto a = ha;
  ref::ger(0.8, VectorView<const double>(hy.data(), rows),
           VectorView<const double>(hyc.data(), cols),
           MatrixView<double>(a.data(), rows, cols));
  EXPECT_NO_THROW(verify::check_rowsums<double>(
      gr, "ger", MatrixView<const double>(a.data(), rows, cols), kScale));
  a[3] *= 1.0 + 1e-7;
  EXPECT_THROW(
      verify::check_rowsums<double>(
          gr, "ger", MatrixView<const double>(a.data(), rows, cols), kScale),
      VerificationError);
}

TEST(VerifyCheckers, SingleElementChecksFloat) {
  const std::int64_t n = 64;
  Workload wl(76);
  const auto hx = wl.vector<float>(n);
  const auto hy = wl.vector<float>(n);
  const VectorView<const float> x(hx.data(), n), y(hy.data(), n);

  const float d = ref::dot(x, y);
  EXPECT_NO_THROW(verify::dot_check<float>(x, y, d, kScale));
  EXPECT_THROW(verify::dot_check<float>(x, y, d + 0.5f, kScale),
               VerificationError);

  const float nrm = ref::nrm2(x);
  EXPECT_NO_THROW(verify::nrm2_check<float>(x, nrm, kScale));
  EXPECT_THROW(verify::nrm2_check<float>(x, -nrm, kScale), VerificationError);
  EXPECT_THROW(verify::nrm2_check<float>(x, nrm * 4.0f, kScale),
               VerificationError);

  const float s = ref::asum(x);
  EXPECT_NO_THROW(verify::asum_check<float>(x, s, kScale));
  EXPECT_THROW(verify::asum_check<float>(x, s * 1.5f, kScale),
               VerificationError);

  const std::int64_t idx = ref::iamax(x);
  EXPECT_NO_THROW(verify::iamax_check<float>(x, idx));
  EXPECT_THROW(verify::iamax_check<float>(x, (idx + 1) % n),
               VerificationError);
  EXPECT_THROW(verify::iamax_check<float>(x, n), VerificationError);
  EXPECT_NO_THROW(
      verify::iamax_check<float>(VectorView<const float>(hx.data(), 0), -1));
}

TEST(VerifyCheckers, NonFinitePredictionsSkipInsteadOfRejecting) {
  // NaN in the inputs poisons the checksum prediction; that is the taint
  // channel's territory, not a corruption verdict — the checker skips.
  const std::int64_t n = 16;
  Workload wl(77);
  auto hx = wl.vector<double>(n);
  hx[5] = std::numeric_limits<double>::quiet_NaN();
  const auto chk =
      verify::scal_prepare<double>(2.0, VectorView<const double>(hx.data(), n));
  auto out = hx;
  for (auto& v : out) v *= 2.0;
  EXPECT_NO_THROW(verify::check_sum<double>(
      chk, "scal", VectorView<const double>(out.data(), n), kScale));
}

TEST(VerifySampling, DeterministicAndProportional) {
  EXPECT_FALSE(verify::sampled(1, 42, 0.0));
  EXPECT_TRUE(verify::sampled(1, 42, 1.0));
  int hits = 0;
  for (std::uint64_t seq = 1; seq <= 1000; ++seq) {
    const bool a = verify::sampled(9, seq, 0.25);
    const bool b = verify::sampled(9, seq, 0.25);
    EXPECT_EQ(a, b);  // pure in (seed, seq)
    hits += a ? 1 : 0;
  }
  EXPECT_GT(hits, 180);  // ~250 expected
  EXPECT_LT(hits, 320);
}

// --- End-to-end: silent corruption through the host runtime --------------

TEST(VerifyRuntime, UnverifiedBaselineMissesSilentCorruption) {
  // One silent fault, no verification: the command completes Ok, the
  // result is wrong, and nothing in the stats hints at the damage —
  // exactly the failure mode ABFT exists for.
  const std::int64_t m = 24, n = 20, k = 16;
  Workload wl(80);
  const auto ha = wl.matrix<float>(m, k);
  const auto hb = wl.matrix<float>(k, n);
  const auto hc = wl.matrix<float>(m, n);

  auto run = [&](bool with_fault) {
    host::Device dev;
    host::Context ctx(dev);
    if (with_fault) {
      host::FaultConfig fc;
      fc.seed = 21;
      fc.silent_corrupt_rate = 1.0;
      fc.max_faults = 1;
      dev.inject_faults(fc);
    }
    host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
    a.write(ha);
    b.write(hb);
    c.write(hc);
    host::Event e = ctx.gemm_async<float>(Transpose::None, Transpose::None,
                                          m, n, k, 1.5f, a, b, 0.5f, c);
    e.wait();
    return std::make_tuple(c.to_host(), e.status(), ctx.exec_stats());
  };

  const auto [clean, clean_st, clean_stats] = run(false);
  const auto [dirty, dirty_st, dirty_stats] = run(true);
  EXPECT_TRUE(clean_st.ok());
  EXPECT_TRUE(dirty_st.ok());  // the device lied and nobody noticed
  EXPECT_NE(clean, dirty);
  EXPECT_EQ(dirty_stats.faults_injected, 1u);
  EXPECT_EQ(dirty_stats.sdc_caught, 0u);
  EXPECT_EQ(dirty_stats.verified, 0u);
}

TEST(VerifyRuntime, AlwaysCatchesSilentCorruptionAndRecoversBitIdentical) {
  // Two budgeted silent faults under Always + retry: both attempts are
  // rejected by the checksum, rolled back, and the third (clean) attempt
  // produces bits identical to a fault-free run.
  const std::int64_t m = 24, n = 20, k = 16;
  Workload wl(81);
  const auto ha = wl.matrix<float>(m, k);
  const auto hb = wl.matrix<float>(k, n);
  const auto hc = wl.matrix<float>(m, n);

  auto run = [&](bool with_faults) {
    host::Device dev;
    host::Context ctx(dev);
    if (with_faults) {
      host::FaultConfig fc;
      fc.seed = 22;
      fc.silent_corrupt_rate = 1.0;
      fc.max_faults = 2;
      dev.inject_faults(fc);
    }
    ctx.set_retry_policy(fast_retry(3));
    ctx.config().verify = verify::VerifyPolicy::Always;
    host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
    a.write(ha);
    b.write(hb);
    c.write(hc);
    host::Event e = ctx.gemm_async<float>(Transpose::None, Transpose::None,
                                          m, n, k, 1.5f, a, b, 0.5f, c);
    e.wait();
    return std::make_tuple(c.to_host(), e.status(), ctx.exec_stats());
  };

  const auto [clean, clean_st, clean_stats] = run(false);
  const auto [rec, rec_st, rec_stats] = run(true);
  EXPECT_EQ(clean, rec);  // recovered, bit-identical
  EXPECT_TRUE(rec_st.ok());
  EXPECT_EQ(rec_st.verify_rejections, 2u);
  EXPECT_EQ(rec_stats.faults_injected, 2u);
  EXPECT_EQ(rec_stats.sdc_caught, 2u);
  EXPECT_EQ(rec_stats.verify_failures, 2u);
  EXPECT_EQ(rec_stats.retries, 2u);
  EXPECT_EQ(rec_stats.verified, 3u);  // every attempt was checked
  EXPECT_EQ(clean_stats.verified, 1u);
  EXPECT_EQ(clean_stats.sdc_caught, 0u);
}

TEST(VerifyRuntime, VerifyRejectionWithoutRetryFailsTransactionally) {
  // No retry budget: the rejection surfaces as VerificationError, but the
  // write-set was rolled back first — the buffer holds pre-command bytes,
  // never the corrupted result.
  const std::int64_t n = 64;
  const auto hx = Workload(82).vector<float>(n);
  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig fc;
  fc.seed = 23;
  fc.silent_corrupt_rate = 1.0;
  dev.inject_faults(fc);
  ctx.config().verify = verify::VerifyPolicy::Always;
  host::Buffer<float> x(dev, n, 0);
  x.write(hx);
  host::Event e = ctx.scal_async<float>(n, 2.0f, x, 1);
  EXPECT_THROW(e.wait(), VerificationError);
  EXPECT_EQ(x.to_host(), hx);  // not half-scaled, not corrupted
  const host::CommandStatus st = e.status();
  EXPECT_TRUE(st.failed());
  EXPECT_EQ(st.verify_rejections, 1u);
  EXPECT_NE(st.message.find("ABFT verification failed"), std::string::npos);
  EXPECT_EQ(ctx.exec_stats().sdc_caught, 1u);
}

TEST(VerifyRuntime, VerifyExhaustionDegradesToCpuFallback) {
  // Unlimited silent corruption: every device attempt is rejected; after
  // retries the CPU reference path serves the (correct) result and the
  // command reports Degraded — same path as any other persistent fault.
  const std::int64_t n = 96;
  Workload wl(83);
  auto hx = wl.vector<float>(n);
  auto hy = wl.vector<float>(n);
  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig fc;
  fc.seed = 24;
  fc.silent_corrupt_rate = 1.0;
  dev.inject_faults(fc);
  ctx.set_retry_policy(fast_retry(2, /*cpu_fallback=*/true));
  ctx.config().verify = verify::VerifyPolicy::Always;
  host::Buffer<float> x(dev, n, 0), y(dev, n, 1);
  x.write(hx);
  y.write(hy);
  host::Event e = ctx.axpy_async<float>(n, 2.0f, x, 1, y, 1);
  EXPECT_NO_THROW(e.wait());

  ref::axpy(2.0f, VectorView<const float>(hx.data(), n),
            VectorView<float>(hy.data(), n));
  EXPECT_EQ(y.to_host(), hy);
  const host::CommandStatus st = e.status();
  EXPECT_TRUE(st.degraded());
  EXPECT_NE(st.message.find("degraded to CPU fallback"), std::string::npos);
  EXPECT_NE(st.message.find("ABFT verification failed"), std::string::npos);
  EXPECT_EQ(st.verify_rejections, 3u);  // initial attempt + 2 retries
  EXPECT_EQ(ctx.exec_stats().degraded, 1u);
}

// The acceptance workload: a mixed GEMM / GEMV / Level-1 stream under 5%
// silent corruption. VerifyPolicy::Always must catch every injected SDC
// (sdc_caught == faults_injected) and recover bit-identically to a
// fault-free run; the unverified baseline must provably miss them.
std::tuple<std::vector<std::vector<float>>, host::ExecStats>
run_mixed_workload(int workers, bool with_faults, verify::VerifyPolicy vp) {
  const std::int64_t m = 32, n = 28, k = 24, len = 256;
  host::Device dev;
  host::Context ctx(dev, stream::Mode::Functional, workers);
  if (with_faults) {
    host::FaultConfig fc;
    fc.seed = 4;
    fc.silent_corrupt_rate = 0.05;
    dev.inject_faults(fc);
  }
  ctx.set_retry_policy(fast_retry(4));
  ctx.config().verify = vp;

  Workload wl(84);
  host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
  host::Buffer<float> ga(dev, m * len, 0), gx(dev, len, 1), gy(dev, m, 2);
  host::Buffer<float> v0(dev, len, 0), v1(dev, len, 1);
  a.write(wl.matrix<float>(m, k));
  b.write(wl.matrix<float>(k, n));
  c.write(wl.matrix<float>(m, n));
  ga.write(wl.matrix<float>(m, len));
  gx.write(wl.vector<float>(len));
  gy.write(wl.vector<float>(m));
  v0.write(wl.vector<float>(len));
  v1.write(wl.vector<float>(len));

  float dots[8] = {};
  for (int round = 0; round < 8; ++round) {
    ctx.gemm_async<float>(Transpose::None, Transpose::None, m, n, k, 1.01f,
                          a, b, 0.5f, c);
    ctx.gemv_async<float>(Transpose::None, m, len, 0.125f, ga, gx, 1, 0.875f,
                          gy, 1);
    ctx.scal_async<float>(len, 1.0009f, v0, 1);
    ctx.axpy_async<float>(len, 0.01f, v0, 1, v1, 1);
    ctx.dot_async<float>(len, v0, 1, v1, 1, &dots[round]);
  }
  ctx.finish();
  std::vector<std::vector<float>> out{c.to_host(), gy.to_host(),
                                      v0.to_host(), v1.to_host(),
                                      std::vector<float>(dots, dots + 8)};
  return {out, ctx.exec_stats()};
}

TEST(VerifyRuntime, MixedWorkloadFivePercentSdcAllCaughtSerial) {
  const auto [clean, clean_stats] =
      run_mixed_workload(0, false, verify::VerifyPolicy::Off);
  const auto [guarded, guarded_stats] =
      run_mixed_workload(0, true, verify::VerifyPolicy::Always);
  const auto [naked, naked_stats] =
      run_mixed_workload(0, true, verify::VerifyPolicy::Off);

  // Seed 4 draws silent faults across the 40 commands (deterministic).
  EXPECT_GT(guarded_stats.faults_injected, 0u);
  EXPECT_EQ(guarded_stats.sdc_caught, guarded_stats.faults_injected);
  EXPECT_EQ(clean, guarded);  // every SDC caught and recovered, bit-identical
  EXPECT_EQ(guarded_stats.degraded, 0u);

  // The same fault stream without verification: wrong bits, zero caught.
  EXPECT_GT(naked_stats.faults_injected, 0u);
  EXPECT_EQ(naked_stats.sdc_caught, 0u);
  EXPECT_NE(clean, naked);
}

TEST(VerifyRuntime, MixedWorkloadFivePercentSdcAllCaughtWorkerPool) {
  // Identical guarantees on the 4-worker out-of-order executor: fault and
  // sampling decisions hash (seed, seq), not thread interleaving.
  const auto [clean, clean_stats] =
      run_mixed_workload(0, false, verify::VerifyPolicy::Off);
  const auto [guarded, guarded_stats] =
      run_mixed_workload(4, true, verify::VerifyPolicy::Always);
  EXPECT_GT(guarded_stats.faults_injected, 0u);
  EXPECT_EQ(guarded_stats.sdc_caught, guarded_stats.faults_injected);
  EXPECT_EQ(clean, guarded);

  const auto [serial, serial_stats] =
      run_mixed_workload(0, true, verify::VerifyPolicy::Always);
  EXPECT_EQ(serial, guarded);
  EXPECT_EQ(serial_stats.faults_injected, guarded_stats.faults_injected);
  EXPECT_EQ(serial_stats.sdc_caught, guarded_stats.sdc_caught);
}

TEST(VerifyRuntime, SampledVerifiesDeterministicFraction) {
  const auto [out_a, stats_a] =
      run_mixed_workload(0, false, verify::VerifyPolicy::Sampled);
  const auto [out_b, stats_b] =
      run_mixed_workload(4, false, verify::VerifyPolicy::Sampled);
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(stats_a.verified, stats_b.verified);  // same commands sampled
  EXPECT_GT(stats_a.verified, 0u);
  EXPECT_LT(stats_a.verified, 40u);  // a fraction, not all
  EXPECT_EQ(stats_a.verify_failures, 0u);
}

TEST(VerifyRuntime, AlwaysOnCleanRunNeverRejects) {
  // No-false-positive sweep: every wired routine, both precisions, with
  // Always verification and no faults — nothing may be rejected.
  host::Device dev;
  host::Context ctx(dev);
  ctx.config().verify = verify::VerifyPolicy::Always;
  const std::int64_t n = 48, k = 16;
  Workload wl(85);

  auto sweep = [&](auto tag) {
    using T = decltype(tag);
    host::Buffer<T> x(dev, n, 0), y(dev, n, 1), z(dev, n, 2);
    host::Buffer<T> A(dev, n * n, 0), B(dev, n * n, 1), C(dev, n * n, 2);
    x.write(wl.vector<T>(n));
    y.write(wl.vector<T>(n));
    z.write(wl.vector<T>(n));
    A.write(wl.matrix<T>(n, n));
    B.write(wl.matrix<T>(n, n));
    C.write(wl.matrix<T>(n, n));

    ctx.scal<T>(n, T(1.5), x);
    ctx.axpy<T>(n, T(0.5), x, y);
    ctx.copy<T>(n, x, z);
    ctx.swap<T>(n, y, z);
    ctx.rot<T>(n, x, y, T(0.8), T(0.6));
    (void)ctx.dot<T>(n, x, y);
    (void)ctx.nrm2<T>(n, x);
    (void)ctx.asum<T>(n, x);
    (void)ctx.iamax<T>(n, x);
    ctx.gemv<T>(Transpose::Trans, n, n, T(0.9), A, x, T(0.1), y);
    ctx.ger<T>(n, n, T(0.05), x, y, C);
    ctx.syr<T>(Uplo::Lower, n, T(0.04), x, C);
    ctx.syr2<T>(Uplo::Upper, n, T(0.03), x, y, C);
    ctx.gemm<T>(Transpose::None, Transpose::Trans, n, n, n, T(0.02), A, B,
                T(0.5), C);
    ctx.syrk<T>(Uplo::Lower, Transpose::None, n, k, T(0.1), A, T(0.9), C);
    ctx.syr2k<T>(Uplo::Upper, Transpose::None, n, k, T(0.1), A, B, T(0.9),
                 C);
    // Well-conditioned triangular systems for the solves.
    {
      auto ha = wl.matrix<T>(n, n);
      for (std::int64_t i = 0; i < n; ++i)
        ha[static_cast<std::size_t>(i * n + i)] += T(n);
      A.write(ha);
    }
    ctx.trsv<T>(Uplo::Lower, Transpose::None, Diag::NonUnit, n, A, x);
    ctx.trsm<T>(Side::Left, Uplo::Lower, Transpose::None, Diag::NonUnit, n,
                n, T(1.0), A, B);
    ctx.trsm<T>(Side::Right, Uplo::Upper, Transpose::Trans, Diag::NonUnit, n,
                n, T(1.0), A, C);
  };
  EXPECT_NO_THROW(sweep(float{}));
  EXPECT_NO_THROW(sweep(double{}));
  const auto stats = ctx.exec_stats();
  EXPECT_GT(stats.verified, 30u);
  EXPECT_EQ(stats.verify_failures, 0u);
  EXPECT_EQ(stats.sdc_caught, 0u);
}

// --- Taint channel: NaN/Inf provenance at module boundaries --------------

TEST(VerifyTaint, TrapNamesTheProducingModule) {
  const std::int64_t n = 32;
  auto hx = Workload(86).vector<float>(n);
  hx[7] = std::numeric_limits<float>::quiet_NaN();
  host::Device dev;
  host::Context ctx(dev);
  ctx.config().trap_nonfinite = true;
  host::Buffer<float> x(dev, n, 0);
  x.write(hx);
  host::Event e = ctx.scal_async<float>(n, 2.0f, x, 1);
  try {
    e.wait();
    FAIL() << "expected TaintError";
  } catch (const TaintError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("non-finite value"), std::string::npos);
    EXPECT_NE(msg.find("module 'read_x'"), std::string::npos);
    EXPECT_NE(msg.find("channel 'x'"), std::string::npos);
  }
  EXPECT_TRUE(e.status().failed());
  // Deterministic, not transient: no retry could ever change the outcome.
  EXPECT_EQ(ctx.exec_stats().retries, 0u);
}

TEST(VerifyTaint, VerifiedNaNRunSkipsChecksInsteadOfRejecting) {
  // Without the trap, NaN data flows through (IEEE semantics) and the
  // checkers skip their poisoned comparisons: Ok result, NaN output, no
  // spurious corruption verdict.
  const std::int64_t n = 32;
  auto hx = Workload(87).vector<float>(n);
  hx[3] = std::numeric_limits<float>::infinity();
  host::Device dev;
  host::Context ctx(dev);
  ctx.set_retry_policy(fast_retry(2));
  ctx.config().verify = verify::VerifyPolicy::Always;
  host::Buffer<float> x(dev, n, 0);
  x.write(hx);
  host::Event e = ctx.scal_async<float>(n, 0.5f, x, 1);
  EXPECT_NO_THROW(e.wait());
  EXPECT_TRUE(e.status().ok());
  EXPECT_TRUE(std::isinf(x.to_host()[3]));
  EXPECT_EQ(ctx.exec_stats().verify_failures, 0u);
}

}  // namespace
}  // namespace fblas
