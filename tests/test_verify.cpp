// ABFT result verification: checksum checkers at the unit level, and the
// end-to-end silent-data-corruption story — an unverified run provably
// misses silent faults, a verified run catches every one and recovers
// bit-identically through the existing retry/rollback/fallback runtime.
//
// Silent corruption decisions hash (seed, command seq, attempt), like
// every other injected fault, so each test here is deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "apps/atax.hpp"
#include "apps/axpydot.hpp"
#include "apps/bicg.hpp"
#include "common/error.hpp"
#include "common/workload.hpp"
#include "fblas/level2.hpp"
#include "host/buffer.hpp"
#include "host/composition.hpp"
#include "host/context.hpp"
#include "mdag/checksum.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"
#include "verify/graph_checker.hpp"
#include "refblas/level1.hpp"
#include "refblas/level2.hpp"
#include "refblas/level3.hpp"
#include "verify/abft.hpp"
#include "verify/options.hpp"
#include "verify/policy.hpp"

namespace fblas {
namespace {

constexpr double kScale = 32.0;  // default verify::Options tolerance_scale

host::RetryPolicy fast_retry(int max_retries, bool cpu_fallback = false) {
  host::RetryPolicy p;
  p.max_retries = max_retries;
  p.backoff = std::chrono::microseconds(0);
  p.cpu_fallback = cpu_fallback;
  return p;
}

// --- verify::Options: the unified knob surface ---------------------------

TEST(VerifyOptions, BuilderRoundTripAndValidation) {
  const verify::Options o = verify::Options::sampled(0.5)
                                .tolerance_scale(8.0)
                                .seed(7)
                                .trap_nonfinite()
                                .adaptive();
  EXPECT_EQ(o.policy(), verify::VerifyPolicy::Sampled);
  EXPECT_DOUBLE_EQ(o.sample_rate(), 0.5);
  EXPECT_DOUBLE_EQ(o.tolerance_scale(), 8.0);
  EXPECT_EQ(o.seed(), 7u);
  EXPECT_TRUE(o.trap_nonfinite());
  EXPECT_TRUE(o.adaptive());
  EXPECT_TRUE(o.enabled());
  EXPECT_FALSE(verify::Options::off().enabled());
  EXPECT_EQ(verify::Options::always().policy(), verify::VerifyPolicy::Always);
  EXPECT_EQ(o, o);
  EXPECT_NE(o, verify::Options::always());

  EXPECT_NO_THROW(o.validate());
  EXPECT_THROW(verify::Options::sampled(1.5).validate(), ConfigError);
  EXPECT_THROW(verify::Options::sampled(-0.1).validate(), ConfigError);
  EXPECT_THROW(verify::Options::always().tolerance_scale(0.0).validate(),
               ConfigError);
}

TEST(VerifyOptions, DeprecatedShimsAliasUnifiedStorage) {
  host::RoutineConfig rc;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  // Writes through the legacy spellings land in the unified Options...
  rc.verify = verify::VerifyPolicy::Always;
  rc.verify_sample_rate = 0.75;
  rc.verify_tolerance_scale = 4.0;
  rc.verify_seed = 99;
  rc.trap_nonfinite = true;
  const verify::Options& ro = rc.verification;
  EXPECT_EQ(ro.policy(), verify::VerifyPolicy::Always);
  EXPECT_DOUBLE_EQ(ro.sample_rate(), 0.75);
  EXPECT_DOUBLE_EQ(ro.tolerance_scale(), 4.0);
  EXPECT_EQ(ro.seed(), 99u);
  EXPECT_TRUE(ro.trap_nonfinite());

  // ...and writes through the new API are visible via the old fields.
  rc.verification.sample_rate(0.125);
  EXPECT_DOUBLE_EQ(rc.verify_sample_rate, 0.125);

  // Copies rebind the shims: each RoutineConfig's legacy references alias
  // its *own* verification storage, never the source's.
  host::RoutineConfig copy = rc;
  copy.verify = verify::VerifyPolicy::Off;
  copy.verify_tolerance_scale = 64.0;
  EXPECT_EQ(rc.verification.policy(), verify::VerifyPolicy::Always);
  EXPECT_DOUBLE_EQ(rc.verification.tolerance_scale(), 4.0);
  EXPECT_EQ(copy.verification.policy(), verify::VerifyPolicy::Off);
  EXPECT_DOUBLE_EQ(copy.verification.tolerance_scale(), 64.0);

  // Assignment copies the values, and the shims keep following the
  // assigned-to object's own storage afterwards.
  rc = copy;
  EXPECT_EQ(rc.verification.policy(), verify::VerifyPolicy::Off);
  rc.verify = verify::VerifyPolicy::Sampled;
  EXPECT_EQ(rc.verification.policy(), verify::VerifyPolicy::Sampled);
  EXPECT_EQ(copy.verification.policy(), verify::VerifyPolicy::Off);
#pragma GCC diagnostic pop
}

// --- Checksum-propagation rules (mdag/checksum) ---------------------------

TEST(VerifyChecksum, GemvPullbackPredictsDownstreamChecksum) {
  const std::int64_t n = 9, m = 7;
  Workload wl(90);
  const auto ha = wl.matrix<double>(n, m);
  const auto hx = wl.vector<double>(m);
  const MatrixView<const double> A(ha.data(), n, m);
  const VectorView<const double> x(hx.data(), m);

  // y = A x: sum(y) must equal (A^T 1)^T x — the pullback of unit
  // weights through the GEMV rule.
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  ref::gemv(Transpose::None, 1.0, A, x, 0.0, VectorView<double>(y.data(), n));
  double direct = 0.0;
  for (double val : y) direct += val;
  const auto w = mdag::gemv_pullback<double>(Transpose::None, A, mdag::ones(n));
  ASSERT_EQ(static_cast<std::int64_t>(w.size()), m);
  const auto pred = mdag::weighted_vec_checksum<double>(x, w);
  EXPECT_NEAR(pred.pred, direct, 1e-9 * std::max(1.0, std::abs(direct)));

  // Transposed direction: s = A^T r pulls back to (A 1) on the r edge.
  const auto hr = wl.vector<double>(n);
  const VectorView<const double> r(hr.data(), n);
  std::vector<double> s(static_cast<std::size_t>(m), 0.0);
  ref::gemv(Transpose::Trans, 1.0, A, r, 0.0, VectorView<double>(s.data(), m));
  double sdirect = 0.0;
  for (double val : s) sdirect += val;
  const auto wt = mdag::gemv_pullback<double>(Transpose::Trans, A,
                                              mdag::ones(m));
  ASSERT_EQ(static_cast<std::int64_t>(wt.size()), n);
  const auto spred = mdag::weighted_vec_checksum<double>(r, wt);
  EXPECT_NEAR(spred.pred, sdirect, 1e-9 * std::max(1.0, std::abs(sdirect)));

  // combine() is the AXPY linearity rule; zero generators are exact.
  const auto c = mdag::combine(pred, spred, 2.0, -3.0);
  EXPECT_DOUBLE_EQ(c.pred, 2.0 * pred.pred - 3.0 * spred.pred);
  EXPECT_EQ(c.terms, pred.terms + spred.terms);
  EXPECT_EQ(mdag::zero_checksum(5).pred, 0.0);
}

TEST(VerifyChecksum, GerPropagationRulePredictsOutputChecksum) {
  // GER rule: for A = alpha x y^T + A0 the unit-weight output checksum is
  // e^T A0 e + alpha (e^T x)(y^T e) — the first bilinear module-DAG rule
  // beyond DOT, computed from per-pass input checksums only.
  const std::int64_t n = 11, m = 8;
  const double alpha = 0.75;
  Workload wl(95);
  auto ha = wl.matrix<double>(n, m);
  const auto hx = wl.vector<double>(n);
  const auto hy = wl.vector<double>(m);

  const auto a0 = mdag::mat_checksum<double>(
      MatrixView<const double>(ha.data(), n, m));
  const auto cx = mdag::vec_checksum<double>(
      VectorView<const double>(hx.data(), n));
  const auto cy = mdag::vec_checksum<double>(
      VectorView<const double>(hy.data(), m));
  const auto pred = mdag::ger_propagate(a0, cx, cy, alpha);

  ref::ger(alpha, VectorView<const double>(hx.data(), n),
           VectorView<const double>(hy.data(), m),
           MatrixView<double>(ha.data(), n, m));
  double direct = 0.0;
  for (double val : ha) direct += val;
  EXPECT_NEAR(pred.pred, direct, 1e-9 * std::max(1.0, std::abs(direct)));
  EXPECT_EQ(pred.terms, a0.terms + cx.terms * cy.terms);
  EXPECT_GE(pred.mag, std::abs(pred.pred));
}

TEST(VerifyChecksum, TrsvPropagationRulePredictsSolutionChecksum) {
  // TRSV rule: x = op(A)^{-1} b has no linear pullback onto b (the
  // inverse is dense), so the rule forward-solves the triangular system
  // in double and checksums the solution — every uplo/trans/diag variant
  // must agree with refblas on sum(x).
  const std::int64_t n = 13;
  Workload wl(90);
  for (const Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    for (const Transpose trans : {Transpose::None, Transpose::Trans}) {
      for (const Diag diag : {Diag::NonUnit, Diag::Unit}) {
        const auto ha = wl.triangular<double>(n, uplo, diag);
        const auto hb = wl.vector<double>(n);
        const MatrixView<const double> A(ha.data(), n, n);

        const auto pred = mdag::trsv_propagate<double>(
            uplo, trans, diag, A, VectorView<const double>(hb.data(), n));

        std::vector<double> x = hb;  // ref::trsv solves in place
        ref::trsv<double>(uplo, trans, diag, A, VectorView<double>(x.data(), n));
        double direct = 0.0, mag = 0.0;
        for (double v : x) {
          direct += v;
          mag += std::abs(v);
        }
        EXPECT_NEAR(pred.pred, direct,
                    1e-9 * std::max(1.0, std::abs(direct)))
            << "uplo=" << static_cast<int>(uplo)
            << " trans=" << static_cast<int>(trans)
            << " diag=" << static_cast<int>(diag);
        EXPECT_NEAR(pred.mag, mag, 1e-9 * std::max(1.0, mag));
        // The bound scales with the n^2 multiply-accumulates of the solve.
        EXPECT_EQ(pred.terms, n * n);
      }
    }
  }
}

TEST(VerifyComposed, TrsvCompositionChecksumLocalizesCorruption) {
  // A compiled TRSV composition: triangular reader -> solver -> writer.
  // Clean runs verify via the trsv_propagate prediction; a corrupted
  // in-flight value is rejected with the first divergent edge naming the
  // injector's ground-truth channel, and retries recover bit-identically.
  const std::int64_t n = 48;
  Workload wl(91);
  const auto ha = wl.triangular<float>(n, Uplo::Lower, Diag::NonUnit);
  const auto hb = wl.vector<float>(n);

  auto run = [&](bool with_fault, int retries) {
    host::Device dev;
    host::Context ctx(dev);
    if (with_fault) {
      host::FaultConfig fc;
      fc.seed = 35;
      fc.channel_corrupt_rate = 1.0;
      fc.max_faults = 1;
      dev.inject_faults(fc);
    }
    ctx.set_retry_policy(fast_retry(retries));
    ctx.config().verification = verify::Options::always();
    host::Buffer<float> a(dev, n * n, 0), b(dev, n, 1), x(dev, n, 2);
    a.write(ha);
    b.write(hb);
    x.write(std::vector<float>(static_cast<std::size_t>(n), 0.0f));

    host::Composition<float> c("trsv_solve");
    const int ra = c.input_triangular("read_A", a, Uplo::Lower);
    const int rb = c.input("read_b", b);
    const int wx = c.output("store_x", x);
    const int tr = c.trsv("trsv", Uplo::Lower);
    c.connect(ra, tr, mdag::StreamSig::vec(n * (n + 1) / 2));
    c.connect(rb, tr, mdag::StreamSig::vec(n));
    c.connect(tr, wx, mdag::StreamSig::vec(n));
    std::string diagnosis;
    host::Event e = ctx.run_composition_async(c);
    try {
      e.wait();
    } catch (const VerificationError& err) {
      diagnosis = err.what();
    }
    return std::make_tuple(x.to_host(), diagnosis, ctx.exec_stats(),
                           dev.faults().last_victim());
  };

  // Clean, verified run agrees with refblas.
  const auto [clean, clean_diag, clean_stats, cv] = run(false, 0);
  EXPECT_TRUE(clean_diag.empty());
  EXPECT_EQ(clean_stats.verify_failures, 0u);
  std::vector<float> ref = hb;
  ref::trsv<float>(Uplo::Lower, Transpose::None, Diag::NonUnit,
                   MatrixView<const float>(ha.data(), n, n),
                   VectorView<float>(ref.data(), n));
  ASSERT_EQ(clean.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(clean[i], ref[i], 1e-3) << "at index " << i;
  }

  // Corrupted without retries: rejected, localized to the ground truth.
  const auto [dirty, diag, dstats, victim] = run(true, 0);
  ASSERT_FALSE(diag.empty());
  EXPECT_NE(diag.find("composition 'trsv_solve'"), std::string::npos);
  EXPECT_NE(diag.find("first divergent edge"), std::string::npos);
  ASSERT_FALSE(victim.empty());
  EXPECT_NE(diag.find("edge '" + victim + "'"), std::string::npos);
  EXPECT_EQ(dstats.sdc_caught, 1u);

  // Corrupted with a retry budget: bit-identical to the clean run.
  const auto [rec, rec_diag, rstats, rv] = run(true, 2);
  EXPECT_TRUE(rec_diag.empty());
  EXPECT_EQ(rec, clean);
  EXPECT_EQ(rstats.sdc_caught, 1u);
  EXPECT_EQ(rstats.retries, 1u);
}

// --- GraphChecker over a GER-shaped module graph ---------------------------
// The rank-1 update partition the mdag planner emits: read_A / read_x /
// read_y feeding the GER module, writing the updated panel out. The GER
// propagation rule predicts the out edge from the DRAM operands alone.

template <typename T>
void run_ger_checked(verify::GraphChecker& chk, std::int64_t rows,
                     std::int64_t cols, T alpha, const std::vector<T>& a,
                     const std::vector<T>& x, const std::vector<T>& y,
                     std::vector<T>& out_a, std::uint64_t corrupt_at,
                     std::string* victim) {
  const core::GerConfig cfg{core::MatrixTiling::TilesByRows, 4, 16, 16};
  stream::Graph g(stream::Mode::Functional);
  auto& ca = g.channel<T>("A", 128);
  auto& cx = g.channel<T>("x", 128);
  auto& cy = g.channel<T>("y", 128);
  auto& out = g.channel<T>("out", 128);
  const auto sched = core::ger_a_schedule(cfg);
  g.spawn("read_A",
          stream::read_matrix<T>(MatrixView<const T>(a.data(), rows, cols),
                                 sched, 1, cfg.width, ca));
  g.spawn("read_x",
          stream::read_vector<T>(VectorView<const T>(x.data(), rows),
                                 core::ger_x_repeat(cfg, rows, cols),
                                 cfg.width, cx));
  g.spawn("read_y",
          stream::read_vector<T>(VectorView<const T>(y.data(), cols),
                                 core::ger_y_repeat(cfg, rows, cols),
                                 cfg.width, cy));
  g.spawn("ger", core::ger<T>(cfg, rows, cols, alpha, ca, cx, cy, out));
  g.spawn("write_A",
          stream::write_matrix<T>(MatrixView<T>(out_a.data(), rows, cols),
                                  sched, cfg.width, out));
  if (corrupt_at != 0) g.scheduler().corrupt_push(corrupt_at);
  chk.arm(g);
  g.run();
  chk.capture(g);
  if (victim != nullptr && g.scheduler().corruption_fired()) {
    *victim = g.scheduler().corrupted_channel();
  }
}

TEST(VerifyChecksum, GerGraphCheckerAcceptsCleanAndLocalizesCorruption) {
  using T = float;
  const std::int64_t rows = 13, cols = 9;
  const T alpha = T(0.5);
  Workload wl(96);
  const auto ha = wl.matrix<T>(rows, cols);
  const auto hx = wl.vector<T>(rows);
  const auto hy = wl.vector<T>(cols);
  const double eps = static_cast<double>(std::numeric_limits<T>::epsilon());
  const core::GerConfig cfg{core::MatrixTiling::TilesByRows, 4, 16, 16};

  auto expect_edges = [&](verify::GraphChecker& chk) {
    chk.reset("ger");
    const auto a0 = mdag::mat_checksum<T>(
        MatrixView<const T>(ha.data(), rows, cols));
    const auto cx1 = mdag::vec_checksum<T>(
        VectorView<const T>(hx.data(), rows));
    const auto cy1 = mdag::vec_checksum<T>(
        VectorView<const T>(hy.data(), cols));
    // Edges in topological order: operands, then the module's output.
    chk.expect("A", a0, eps);
    chk.expect("x",
               mdag::vec_checksum<T>(VectorView<const T>(hx.data(), rows),
                                     core::ger_x_repeat(cfg, rows, cols)),
               eps);
    chk.expect("y",
               mdag::vec_checksum<T>(VectorView<const T>(hy.data(), cols),
                                     core::ger_y_repeat(cfg, rows, cols)),
               eps);
    chk.expect("out", mdag::ger_propagate(a0, cx1, cy1, alpha), eps);
  };

  {  // Clean run: all four edges match their predictions.
    verify::GraphChecker chk;
    expect_edges(chk);
    std::vector<T> out(static_cast<std::size_t>(rows * cols), T(0));
    run_ger_checked<T>(chk, rows, cols, alpha, ha, hx, hy, out, 0, nullptr);
    EXPECT_NO_THROW(chk.check(kScale));
    // The realized panel is the reference rank-1 update.
    auto aref = ha;
    ref::ger(alpha, VectorView<const T>(hx.data(), rows),
             VectorView<const T>(hy.data(), cols),
             MatrixView<T>(aref.data(), rows, cols));
    EXPECT_EQ(out, aref);
  }
  {  // One in-flight value flipped: the checker rejects and names exactly
     // the channel the corruption crossed.
    verify::GraphChecker chk;
    expect_edges(chk);
    std::vector<T> out(static_cast<std::size_t>(rows * cols), T(0));
    std::string victim;
    run_ger_checked<T>(chk, rows, cols, alpha, ha, hx, hy, out, 40, &victim);
    ASSERT_FALSE(victim.empty());
    try {
      chk.check(kScale);
      FAIL() << "expected VerificationError";
    } catch (const VerificationError& err) {
      const std::string msg = err.what();
      EXPECT_NE(msg.find("composition 'ger'"), std::string::npos);
      EXPECT_NE(msg.find("edge '" + victim + "'"), std::string::npos);
      EXPECT_NE(msg.find("first divergent edge"), std::string::npos);
    }
  }
}

// --- Checker unit tests --------------------------------------------------
// Each checker must accept the reference result of the routine it guards
// (no false positives on clean data) and reject a single corrupted
// element (no false negatives on damage far above rounding).

TEST(VerifyCheckers, GemmRowAndColumnChecksums) {
  const std::int64_t m = 12, n = 10, k = 8;
  Workload wl(70);
  const auto ha = wl.matrix<double>(m, k);
  const auto hb = wl.matrix<double>(k, n);
  const auto hc = wl.matrix<double>(m, n);
  const auto chk = verify::gemm_prepare<double>(
      Transpose::None, Transpose::None, m, n, k, 1.5,
      MatrixView<const double>(ha.data(), m, k),
      MatrixView<const double>(hb.data(), k, n), 0.5,
      MatrixView<const double>(hc.data(), m, n));

  auto c = hc;
  ref::gemm(Transpose::None, Transpose::None, 1.5,
            MatrixView<const double>(ha.data(), m, k),
            MatrixView<const double>(hb.data(), k, n), 0.5,
            MatrixView<double>(c.data(), m, n));
  EXPECT_NO_THROW(verify::gemm_check<double>(
      chk, MatrixView<const double>(c.data(), m, n), kScale));

  auto bad = c;
  bad[static_cast<std::size_t>(3 * n + 7)] += 1e-3;
  try {
    verify::gemm_check<double>(chk, MatrixView<const double>(bad.data(), m, n),
                               kScale);
    FAIL() << "expected VerificationError";
  } catch (const VerificationError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("gemm"), std::string::npos);
    EXPECT_NE(msg.find("silent data corruption"), std::string::npos);
  }
}

TEST(VerifyCheckers, GemmTransposedOperandsChecksum) {
  const std::int64_t m = 9, n = 11, k = 7;
  Workload wl(71);
  const auto ha = wl.matrix<double>(k, m);  // A^T storage
  const auto hb = wl.matrix<double>(n, k);  // B^T storage
  const auto hc = wl.matrix<double>(m, n);
  const auto chk = verify::gemm_prepare<double>(
      Transpose::Trans, Transpose::Trans, m, n, k, -0.75,
      MatrixView<const double>(ha.data(), k, m),
      MatrixView<const double>(hb.data(), n, k), 2.0,
      MatrixView<const double>(hc.data(), m, n));

  auto c = hc;
  ref::gemm(Transpose::Trans, Transpose::Trans, -0.75,
            MatrixView<const double>(ha.data(), k, m),
            MatrixView<const double>(hb.data(), n, k), 2.0,
            MatrixView<double>(c.data(), m, n));
  EXPECT_NO_THROW(verify::gemm_check<double>(
      chk, MatrixView<const double>(c.data(), m, n), kScale));
  c[1] *= 1.0 + 1e-6;
  EXPECT_THROW(verify::gemm_check<double>(
                   chk, MatrixView<const double>(c.data(), m, n), kScale),
               VerificationError);
}

TEST(VerifyCheckers, SyrkTriangleMaskedChecksums) {
  const std::int64_t n = 10, k = 6;
  Workload wl(72);
  const auto ha = wl.matrix<double>(n, k);
  const auto hc = wl.matrix<double>(n, n);
  const auto chk = verify::syrk_prepare<double>(
      Uplo::Lower, Transpose::None, n, k, 1.25,
      MatrixView<const double>(ha.data(), n, k), 0.5,
      MatrixView<const double>(hc.data(), n, n));

  auto c = hc;
  ref::syrk(Uplo::Lower, Transpose::None, 1.25,
            MatrixView<const double>(ha.data(), n, k), 0.5,
            MatrixView<double>(c.data(), n, n));
  EXPECT_NO_THROW(verify::check_rowsums<double>(
      chk, "syrk", MatrixView<const double>(c.data(), n, n), kScale));

  // Corruption inside the stored (lower) triangle is caught...
  auto bad = c;
  bad[static_cast<std::size_t>(7 * n + 2)] += 1e-4;
  EXPECT_THROW(
      verify::check_rowsums<double>(
          chk, "syrk", MatrixView<const double>(bad.data(), n, n), kScale),
      VerificationError);
  // ...while the strict upper triangle is outside SYRK's write-set, so
  // the tri mask must ignore it (BLAS never touches it).
  bad = c;
  bad[static_cast<std::size_t>(2 * n + 7)] += 1e+4;
  EXPECT_NO_THROW(verify::check_rowsums<double>(
      chk, "syrk", MatrixView<const double>(bad.data(), n, n), kScale));
}

TEST(VerifyCheckers, Syr2kUpperChecksums) {
  const std::int64_t n = 8, k = 5;
  Workload wl(73);
  const auto ha = wl.matrix<double>(n, k);
  const auto hb = wl.matrix<double>(n, k);
  const auto hc = wl.matrix<double>(n, n);
  const auto chk = verify::syr2k_prepare<double>(
      Uplo::Upper, Transpose::None, n, k, 0.5,
      MatrixView<const double>(ha.data(), n, k),
      MatrixView<const double>(hb.data(), n, k), 1.0,
      MatrixView<const double>(hc.data(), n, n));

  auto c = hc;
  ref::syr2k(Uplo::Upper, Transpose::None, 0.5,
             MatrixView<const double>(ha.data(), n, k),
             MatrixView<const double>(hb.data(), n, k), 1.0,
             MatrixView<double>(c.data(), n, n));
  EXPECT_NO_THROW(verify::check_rowsums<double>(
      chk, "syr2k", MatrixView<const double>(c.data(), n, n), kScale));
  c[static_cast<std::size_t>(3 * n + 6)] -= 1e-3;  // stored upper element
  EXPECT_THROW(
      verify::check_rowsums<double>(
          chk, "syr2k", MatrixView<const double>(c.data(), n, n), kScale),
      VerificationError);
}

TEST(VerifyCheckers, TrsmResidualChecksums) {
  const std::int64_t m = 12, n = 6;
  Workload wl(74);
  auto ha = wl.matrix<double>(m, m);
  // Diagonally dominant lower triangle: a well-conditioned solve.
  for (std::int64_t i = 0; i < m; ++i) ha[static_cast<std::size_t>(i * m + i)] += m;
  const auto hb = wl.matrix<double>(m, n);
  const auto chk = verify::trsm_prepare<double>(
      Side::Left, m, n, 2.0, MatrixView<const double>(hb.data(), m, n));

  auto x = hb;
  ref::trsm(Side::Left, Uplo::Lower, Transpose::None, Diag::NonUnit, 2.0,
            MatrixView<const double>(ha.data(), m, m),
            MatrixView<double>(x.data(), m, n));
  EXPECT_NO_THROW(verify::trsm_check<double>(
      chk, Side::Left, Uplo::Lower, Transpose::None, Diag::NonUnit, m, n,
      MatrixView<const double>(ha.data(), m, m),
      MatrixView<const double>(x.data(), m, n), kScale));
  x[static_cast<std::size_t>(5 * n + 3)] += 1e-4;
  EXPECT_THROW(verify::trsm_check<double>(
                   chk, Side::Left, Uplo::Lower, Transpose::None,
                   Diag::NonUnit, m, n,
                   MatrixView<const double>(ha.data(), m, m),
                   MatrixView<const double>(x.data(), m, n), kScale),
               VerificationError);
}

TEST(VerifyCheckers, GemvAndGerChecksums) {
  const std::int64_t rows = 14, cols = 9;
  Workload wl(75);
  const auto ha = wl.matrix<double>(rows, cols);
  const auto hx = wl.vector<double>(cols);
  const auto hy = wl.vector<double>(rows);

  const auto gv = verify::gemv_prepare<double>(
      Transpose::None, rows, cols, 1.1,
      MatrixView<const double>(ha.data(), rows, cols),
      VectorView<const double>(hx.data(), cols), -0.4,
      VectorView<const double>(hy.data(), rows));
  auto y = hy;
  ref::gemv(Transpose::None, 1.1, MatrixView<const double>(ha.data(), rows, cols),
            VectorView<const double>(hx.data(), cols), -0.4,
            VectorView<double>(y.data(), rows));
  EXPECT_NO_THROW(verify::check_sum<double>(
      gv, "gemv", VectorView<const double>(y.data(), rows), kScale));
  y[4] += 1e-5;
  EXPECT_THROW(verify::check_sum<double>(
                   gv, "gemv", VectorView<const double>(y.data(), rows),
                   kScale),
               VerificationError);

  const auto hyc = wl.vector<double>(cols);
  const auto gr = verify::ger_prepare<double>(
      rows, cols, 0.8, VectorView<const double>(hy.data(), rows),
      VectorView<const double>(hyc.data(), cols),
      MatrixView<const double>(ha.data(), rows, cols));
  auto a = ha;
  ref::ger(0.8, VectorView<const double>(hy.data(), rows),
           VectorView<const double>(hyc.data(), cols),
           MatrixView<double>(a.data(), rows, cols));
  EXPECT_NO_THROW(verify::check_rowsums<double>(
      gr, "ger", MatrixView<const double>(a.data(), rows, cols), kScale));
  a[3] *= 1.0 + 1e-7;
  EXPECT_THROW(
      verify::check_rowsums<double>(
          gr, "ger", MatrixView<const double>(a.data(), rows, cols), kScale),
      VerificationError);
}

TEST(VerifyCheckers, SingleElementChecksFloat) {
  const std::int64_t n = 64;
  Workload wl(76);
  const auto hx = wl.vector<float>(n);
  const auto hy = wl.vector<float>(n);
  const VectorView<const float> x(hx.data(), n), y(hy.data(), n);

  const float d = ref::dot(x, y);
  EXPECT_NO_THROW(verify::dot_check<float>(x, y, d, kScale));
  EXPECT_THROW(verify::dot_check<float>(x, y, d + 0.5f, kScale),
               VerificationError);

  const float nrm = ref::nrm2(x);
  EXPECT_NO_THROW(verify::nrm2_check<float>(x, nrm, kScale));
  EXPECT_THROW(verify::nrm2_check<float>(x, -nrm, kScale), VerificationError);
  EXPECT_THROW(verify::nrm2_check<float>(x, nrm * 4.0f, kScale),
               VerificationError);

  const float s = ref::asum(x);
  EXPECT_NO_THROW(verify::asum_check<float>(x, s, kScale));
  EXPECT_THROW(verify::asum_check<float>(x, s * 1.5f, kScale),
               VerificationError);

  const std::int64_t idx = ref::iamax(x);
  EXPECT_NO_THROW(verify::iamax_check<float>(x, idx));
  EXPECT_THROW(verify::iamax_check<float>(x, (idx + 1) % n),
               VerificationError);
  EXPECT_THROW(verify::iamax_check<float>(x, n), VerificationError);
  EXPECT_NO_THROW(
      verify::iamax_check<float>(VectorView<const float>(hx.data(), 0), -1));
}

TEST(VerifyCheckers, NonFinitePredictionsSkipInsteadOfRejecting) {
  // NaN in the inputs poisons the checksum prediction; that is the taint
  // channel's territory, not a corruption verdict — the checker skips.
  const std::int64_t n = 16;
  Workload wl(77);
  auto hx = wl.vector<double>(n);
  hx[5] = std::numeric_limits<double>::quiet_NaN();
  const auto chk =
      verify::scal_prepare<double>(2.0, VectorView<const double>(hx.data(), n));
  auto out = hx;
  for (auto& v : out) v *= 2.0;
  EXPECT_NO_THROW(verify::check_sum<double>(
      chk, "scal", VectorView<const double>(out.data(), n), kScale));
}

TEST(VerifySampling, DeterministicAndProportional) {
  EXPECT_FALSE(verify::sampled(1, 42, 0.0));
  EXPECT_TRUE(verify::sampled(1, 42, 1.0));
  int hits = 0;
  for (std::uint64_t seq = 1; seq <= 1000; ++seq) {
    const bool a = verify::sampled(9, seq, 0.25);
    const bool b = verify::sampled(9, seq, 0.25);
    EXPECT_EQ(a, b);  // pure in (seed, seq)
    hits += a ? 1 : 0;
  }
  EXPECT_GT(hits, 180);  // ~250 expected
  EXPECT_LT(hits, 320);
}

// --- End-to-end: silent corruption through the host runtime --------------

TEST(VerifyRuntime, UnverifiedBaselineMissesSilentCorruption) {
  // One silent fault, no verification: the command completes Ok, the
  // result is wrong, and nothing in the stats hints at the damage —
  // exactly the failure mode ABFT exists for.
  const std::int64_t m = 24, n = 20, k = 16;
  Workload wl(80);
  const auto ha = wl.matrix<float>(m, k);
  const auto hb = wl.matrix<float>(k, n);
  const auto hc = wl.matrix<float>(m, n);

  auto run = [&](bool with_fault) {
    host::Device dev;
    host::Context ctx(dev);
    if (with_fault) {
      host::FaultConfig fc;
      fc.seed = 21;
      fc.silent_corrupt_rate = 1.0;
      fc.max_faults = 1;
      dev.inject_faults(fc);
    }
    host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
    a.write(ha);
    b.write(hb);
    c.write(hc);
    host::Event e = ctx.gemm_async<float>(Transpose::None, Transpose::None,
                                          m, n, k, 1.5f, a, b, 0.5f, c);
    e.wait();
    return std::make_tuple(c.to_host(), e.status(), ctx.exec_stats());
  };

  const auto [clean, clean_st, clean_stats] = run(false);
  const auto [dirty, dirty_st, dirty_stats] = run(true);
  EXPECT_TRUE(clean_st.ok());
  EXPECT_TRUE(dirty_st.ok());  // the device lied and nobody noticed
  EXPECT_NE(clean, dirty);
  EXPECT_EQ(dirty_stats.faults_injected, 1u);
  EXPECT_EQ(dirty_stats.sdc_caught, 0u);
  EXPECT_EQ(dirty_stats.verified, 0u);
}

TEST(VerifyRuntime, AlwaysCatchesSilentCorruptionAndRecoversBitIdentical) {
  // Two budgeted silent faults under Always + retry: both attempts are
  // rejected by the checksum, rolled back, and the third (clean) attempt
  // produces bits identical to a fault-free run.
  const std::int64_t m = 24, n = 20, k = 16;
  Workload wl(81);
  const auto ha = wl.matrix<float>(m, k);
  const auto hb = wl.matrix<float>(k, n);
  const auto hc = wl.matrix<float>(m, n);

  auto run = [&](bool with_faults) {
    host::Device dev;
    host::Context ctx(dev);
    if (with_faults) {
      host::FaultConfig fc;
      fc.seed = 22;
      fc.silent_corrupt_rate = 1.0;
      fc.max_faults = 2;
      dev.inject_faults(fc);
    }
    ctx.set_retry_policy(fast_retry(3));
    ctx.config().verification = verify::Options::always();
    host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
    a.write(ha);
    b.write(hb);
    c.write(hc);
    host::Event e = ctx.gemm_async<float>(Transpose::None, Transpose::None,
                                          m, n, k, 1.5f, a, b, 0.5f, c);
    e.wait();
    return std::make_tuple(c.to_host(), e.status(), ctx.exec_stats());
  };

  const auto [clean, clean_st, clean_stats] = run(false);
  const auto [rec, rec_st, rec_stats] = run(true);
  EXPECT_EQ(clean, rec);  // recovered, bit-identical
  EXPECT_TRUE(rec_st.ok());
  EXPECT_EQ(rec_st.verify_rejections, 2u);
  EXPECT_EQ(rec_stats.faults_injected, 2u);
  EXPECT_EQ(rec_stats.sdc_caught, 2u);
  EXPECT_EQ(rec_stats.verify_failures, 2u);
  EXPECT_EQ(rec_stats.retries, 2u);
  EXPECT_EQ(rec_stats.verified, 3u);  // every attempt was checked
  EXPECT_EQ(clean_stats.verified, 1u);
  EXPECT_EQ(clean_stats.sdc_caught, 0u);
}

TEST(VerifyRuntime, VerifyRejectionWithoutRetryFailsTransactionally) {
  // No retry budget: the rejection surfaces as VerificationError, but the
  // write-set was rolled back first — the buffer holds pre-command bytes,
  // never the corrupted result.
  const std::int64_t n = 64;
  const auto hx = Workload(82).vector<float>(n);
  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig fc;
  fc.seed = 23;
  fc.silent_corrupt_rate = 1.0;
  dev.inject_faults(fc);
  ctx.config().verification = verify::Options::always();
  host::Buffer<float> x(dev, n, 0);
  x.write(hx);
  host::Event e = ctx.scal_async<float>(n, 2.0f, x, 1);
  EXPECT_THROW(e.wait(), VerificationError);
  EXPECT_EQ(x.to_host(), hx);  // not half-scaled, not corrupted
  const host::CommandStatus st = e.status();
  EXPECT_TRUE(st.failed());
  EXPECT_EQ(st.verify_rejections, 1u);
  EXPECT_NE(st.message.find("ABFT verification failed"), std::string::npos);
  EXPECT_EQ(ctx.exec_stats().sdc_caught, 1u);
}

TEST(VerifyRuntime, VerifyExhaustionDegradesToCpuFallback) {
  // Unlimited silent corruption: every device attempt is rejected; after
  // retries the CPU reference path serves the (correct) result and the
  // command reports Degraded — same path as any other persistent fault.
  const std::int64_t n = 96;
  Workload wl(83);
  auto hx = wl.vector<float>(n);
  auto hy = wl.vector<float>(n);
  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig fc;
  fc.seed = 24;
  fc.silent_corrupt_rate = 1.0;
  dev.inject_faults(fc);
  ctx.set_retry_policy(fast_retry(2, /*cpu_fallback=*/true));
  ctx.config().verification = verify::Options::always();
  host::Buffer<float> x(dev, n, 0), y(dev, n, 1);
  x.write(hx);
  y.write(hy);
  host::Event e = ctx.axpy_async<float>(n, 2.0f, x, 1, y, 1);
  EXPECT_NO_THROW(e.wait());

  ref::axpy(2.0f, VectorView<const float>(hx.data(), n),
            VectorView<float>(hy.data(), n));
  EXPECT_EQ(y.to_host(), hy);
  const host::CommandStatus st = e.status();
  EXPECT_TRUE(st.degraded());
  EXPECT_NE(st.message.find("degraded to CPU fallback"), std::string::npos);
  EXPECT_NE(st.message.find("ABFT verification failed"), std::string::npos);
  EXPECT_EQ(st.verify_rejections, 3u);  // initial attempt + 2 retries
  EXPECT_EQ(ctx.exec_stats().degraded, 1u);
}

// The acceptance workload: a mixed GEMM / GEMV / Level-1 stream under 5%
// silent corruption. VerifyPolicy::Always must catch every injected SDC
// (sdc_caught == faults_injected) and recover bit-identically to a
// fault-free run; the unverified baseline must provably miss them.
std::tuple<std::vector<std::vector<float>>, host::ExecStats>
run_mixed_workload(int workers, bool with_faults, verify::VerifyPolicy vp) {
  const std::int64_t m = 32, n = 28, k = 24, len = 256;
  host::Device dev;
  host::Context ctx(dev, stream::Mode::Functional, workers);
  if (with_faults) {
    host::FaultConfig fc;
    fc.seed = 4;
    fc.silent_corrupt_rate = 0.05;
    dev.inject_faults(fc);
  }
  ctx.set_retry_policy(fast_retry(4));
  ctx.config().verification.policy(vp);

  Workload wl(84);
  host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
  host::Buffer<float> ga(dev, m * len, 0), gx(dev, len, 1), gy(dev, m, 2);
  host::Buffer<float> v0(dev, len, 0), v1(dev, len, 1);
  a.write(wl.matrix<float>(m, k));
  b.write(wl.matrix<float>(k, n));
  c.write(wl.matrix<float>(m, n));
  ga.write(wl.matrix<float>(m, len));
  gx.write(wl.vector<float>(len));
  gy.write(wl.vector<float>(m));
  v0.write(wl.vector<float>(len));
  v1.write(wl.vector<float>(len));

  float dots[8] = {};
  for (int round = 0; round < 8; ++round) {
    ctx.gemm_async<float>(Transpose::None, Transpose::None, m, n, k, 1.01f,
                          a, b, 0.5f, c);
    ctx.gemv_async<float>(Transpose::None, m, len, 0.125f, ga, gx, 1, 0.875f,
                          gy, 1);
    ctx.scal_async<float>(len, 1.0009f, v0, 1);
    ctx.axpy_async<float>(len, 0.01f, v0, 1, v1, 1);
    ctx.dot_async<float>(len, v0, 1, v1, 1, &dots[round]);
  }
  ctx.finish();
  std::vector<std::vector<float>> out{c.to_host(), gy.to_host(),
                                      v0.to_host(), v1.to_host(),
                                      std::vector<float>(dots, dots + 8)};
  return {out, ctx.exec_stats()};
}

TEST(VerifyRuntime, MixedWorkloadFivePercentSdcAllCaughtSerial) {
  const auto [clean, clean_stats] =
      run_mixed_workload(0, false, verify::VerifyPolicy::Off);
  const auto [guarded, guarded_stats] =
      run_mixed_workload(0, true, verify::VerifyPolicy::Always);
  const auto [naked, naked_stats] =
      run_mixed_workload(0, true, verify::VerifyPolicy::Off);

  // Seed 4 draws silent faults across the 40 commands (deterministic).
  EXPECT_GT(guarded_stats.faults_injected, 0u);
  EXPECT_EQ(guarded_stats.sdc_caught, guarded_stats.faults_injected);
  EXPECT_EQ(clean, guarded);  // every SDC caught and recovered, bit-identical
  EXPECT_EQ(guarded_stats.degraded, 0u);

  // The same fault stream without verification: wrong bits, zero caught.
  EXPECT_GT(naked_stats.faults_injected, 0u);
  EXPECT_EQ(naked_stats.sdc_caught, 0u);
  EXPECT_NE(clean, naked);
}

TEST(VerifyRuntime, MixedWorkloadFivePercentSdcAllCaughtWorkerPool) {
  // Identical guarantees on the 4-worker out-of-order executor: fault and
  // sampling decisions hash (seed, seq), not thread interleaving.
  const auto [clean, clean_stats] =
      run_mixed_workload(0, false, verify::VerifyPolicy::Off);
  const auto [guarded, guarded_stats] =
      run_mixed_workload(4, true, verify::VerifyPolicy::Always);
  EXPECT_GT(guarded_stats.faults_injected, 0u);
  EXPECT_EQ(guarded_stats.sdc_caught, guarded_stats.faults_injected);
  EXPECT_EQ(clean, guarded);

  const auto [serial, serial_stats] =
      run_mixed_workload(0, true, verify::VerifyPolicy::Always);
  EXPECT_EQ(serial, guarded);
  EXPECT_EQ(serial_stats.faults_injected, guarded_stats.faults_injected);
  EXPECT_EQ(serial_stats.sdc_caught, guarded_stats.sdc_caught);
}

TEST(VerifyRuntime, SampledVerifiesDeterministicFraction) {
  const auto [out_a, stats_a] =
      run_mixed_workload(0, false, verify::VerifyPolicy::Sampled);
  const auto [out_b, stats_b] =
      run_mixed_workload(4, false, verify::VerifyPolicy::Sampled);
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(stats_a.verified, stats_b.verified);  // same commands sampled
  EXPECT_GT(stats_a.verified, 0u);
  EXPECT_LT(stats_a.verified, 40u);  // a fraction, not all
  EXPECT_EQ(stats_a.verify_failures, 0u);
}

TEST(VerifyRuntime, AlwaysOnCleanRunNeverRejects) {
  // No-false-positive sweep: every wired routine, both precisions, with
  // Always verification and no faults — nothing may be rejected.
  host::Device dev;
  host::Context ctx(dev);
  ctx.config().verification = verify::Options::always();
  const std::int64_t n = 48, k = 16;
  Workload wl(85);

  auto sweep = [&](auto tag) {
    using T = decltype(tag);
    host::Buffer<T> x(dev, n, 0), y(dev, n, 1), z(dev, n, 2);
    host::Buffer<T> A(dev, n * n, 0), B(dev, n * n, 1), C(dev, n * n, 2);
    x.write(wl.vector<T>(n));
    y.write(wl.vector<T>(n));
    z.write(wl.vector<T>(n));
    A.write(wl.matrix<T>(n, n));
    B.write(wl.matrix<T>(n, n));
    C.write(wl.matrix<T>(n, n));

    ctx.scal<T>(n, T(1.5), x);
    ctx.axpy<T>(n, T(0.5), x, y);
    ctx.copy<T>(n, x, z);
    ctx.swap<T>(n, y, z);
    ctx.rot<T>(n, x, y, T(0.8), T(0.6));
    (void)ctx.dot<T>(n, x, y);
    (void)ctx.nrm2<T>(n, x);
    (void)ctx.asum<T>(n, x);
    (void)ctx.iamax<T>(n, x);
    ctx.gemv<T>(Transpose::Trans, n, n, T(0.9), A, x, T(0.1), y);
    ctx.ger<T>(n, n, T(0.05), x, y, C);
    ctx.syr<T>(Uplo::Lower, n, T(0.04), x, C);
    ctx.syr2<T>(Uplo::Upper, n, T(0.03), x, y, C);
    ctx.gemm<T>(Transpose::None, Transpose::Trans, n, n, n, T(0.02), A, B,
                T(0.5), C);
    ctx.syrk<T>(Uplo::Lower, Transpose::None, n, k, T(0.1), A, T(0.9), C);
    ctx.syr2k<T>(Uplo::Upper, Transpose::None, n, k, T(0.1), A, B, T(0.9),
                 C);
    // Well-conditioned triangular systems for the solves.
    {
      auto ha = wl.matrix<T>(n, n);
      for (std::int64_t i = 0; i < n; ++i)
        ha[static_cast<std::size_t>(i * n + i)] += T(n);
      A.write(ha);
    }
    ctx.trsv<T>(Uplo::Lower, Transpose::None, Diag::NonUnit, n, A, x);
    ctx.trsm<T>(Side::Left, Uplo::Lower, Transpose::None, Diag::NonUnit, n,
                n, T(1.0), A, B);
    ctx.trsm<T>(Side::Right, Uplo::Upper, Transpose::Trans, Diag::NonUnit, n,
                n, T(1.0), A, C);
  };
  EXPECT_NO_THROW(sweep(float{}));
  EXPECT_NO_THROW(sweep(double{}));
  const auto stats = ctx.exec_stats();
  EXPECT_GT(stats.verified, 30u);
  EXPECT_EQ(stats.verify_failures, 0u);
  EXPECT_EQ(stats.sdc_caught, 0u);
}

// --- Composed commands: checksum-carrying streaming compositions ----------
// The three paper applications run as single host commands whose
// intermediates never touch DRAM; the GraphChecker compares per-channel
// taps against pullback predictions computed from the DRAM inputs only.

TEST(VerifyComposed, CleanCompositionsMatchCpuReferences) {
  const std::int64_t n = 20, m = 16, len = 96;
  Workload wl(91);
  host::Device dev;
  host::Context ctx(dev);
  ctx.config().verification = verify::Options::always();

  const auto ha = wl.matrix<double>(n, m);
  const auto hx = wl.vector<double>(m);
  const MatrixView<const double> A(ha.data(), n, m);

  {  // ATAX: y = A^T (A x)
    host::Buffer<double> a(dev, n * m, 0), x(dev, m, 1), y(dev, m, 2);
    a.write(ha);
    x.write(hx);
    y.write(std::vector<double>(static_cast<std::size_t>(m), -1.0));
    apps::atax_composed<double>(ctx, n, m, a, x, y);
    const auto yref =
        apps::atax_cpu<double>(A, VectorView<const double>(hx.data(), m));
    const auto got = y.to_host();
    for (std::int64_t i = 0; i < m; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      EXPECT_NEAR(got[idx], yref[idx],
                  1e-9 * std::max(1.0, std::abs(yref[idx])));
    }
  }
  {  // BICG: q = A p, s = A^T r
    const auto hp = wl.vector<double>(m);
    const auto hr = wl.vector<double>(n);
    host::Buffer<double> a(dev, n * m, 0), p(dev, m, 1), r(dev, n, 2);
    host::Buffer<double> q(dev, n, 1), s(dev, m, 2);
    a.write(ha);
    p.write(hp);
    r.write(hr);
    q.write(std::vector<double>(static_cast<std::size_t>(n), 0.0));
    s.write(std::vector<double>(static_cast<std::size_t>(m), 0.0));
    apps::bicg_composed<double>(ctx, n, m, a, p, r, q, s);
    const auto ref = apps::bicg_cpu<double>(
        A, VectorView<const double>(hp.data(), m),
        VectorView<const double>(hr.data(), n));
    const auto gq = q.to_host();
    const auto gs = s.to_host();
    for (std::int64_t i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      EXPECT_NEAR(gq[idx], ref.q[idx],
                  1e-9 * std::max(1.0, std::abs(ref.q[idx])));
    }
    for (std::int64_t i = 0; i < m; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      EXPECT_NEAR(gs[idx], ref.s[idx],
                  1e-9 * std::max(1.0, std::abs(ref.s[idx])));
    }
  }
  {  // AXPYDOT: beta = (w - alpha v)^T u
    const auto hw = wl.vector<double>(len);
    const auto hv = wl.vector<double>(len);
    const auto hu = wl.vector<double>(len);
    host::Buffer<double> w(dev, len, 0), v(dev, len, 1), u(dev, len, 2);
    w.write(hw);
    v.write(hv);
    u.write(hu);
    const double beta = apps::axpydot_composed<double>(ctx, len, w, v, u, 0.3);
    const double bref = apps::axpydot_cpu<double>(
        VectorView<const double>(hw.data(), len),
        VectorView<const double>(hv.data(), len),
        VectorView<const double>(hu.data(), len), 0.3);
    EXPECT_NEAR(beta, bref, 1e-9 * std::max(1.0, std::abs(bref)));
  }

  // Every composed command was checked, none rejected.
  const auto stats = ctx.exec_stats();
  EXPECT_EQ(stats.verified, 3u);
  EXPECT_EQ(stats.verify_failures, 0u);
  EXPECT_EQ(stats.sdc_caught, 0u);
}

TEST(VerifyComposed, PerCallOptionsOverrideOnlyThatCommand) {
  // The verify::Options overload scopes its override to the one enqueue:
  // the context's own (Off) policy is untouched before and after.
  const std::int64_t n = 12, m = 8;
  Workload wl(97);
  host::Device dev;
  host::Context ctx(dev);
  ASSERT_FALSE(ctx.config().verification.enabled());

  host::Buffer<double> a(dev, n * m, 0), x(dev, m, 1), y(dev, m, 2);
  a.write(wl.matrix<double>(n, m));
  x.write(wl.vector<double>(m));
  y.write(std::vector<double>(static_cast<std::size_t>(m), 0.0));
  apps::atax_composed_async<double>(ctx, n, m, a, x, y,
                                    verify::Options::always())
      .wait();
  EXPECT_FALSE(ctx.config().verification.enabled());  // guard restored
  EXPECT_EQ(ctx.exec_stats().verified, 1u);

  apps::atax_composed_async<double>(ctx, n, m, a, x, y).wait();
  EXPECT_EQ(ctx.exec_stats().verified, 1u);  // second command unverified
}

TEST(VerifyComposed, ChannelCorruptionLocalizedToFirstDivergentEdge) {
  // One in-flight value flipped on an intermediate channel: no write-set
  // snapshot can see it, but the edge checksums localize it. Without a
  // retry budget the rejection surfaces transactionally.
  const std::int64_t n = 32, m = 24;
  Workload wl(92);
  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig fc;
  fc.seed = 31;
  fc.channel_corrupt_rate = 1.0;
  fc.max_faults = 1;
  dev.inject_faults(fc);
  ctx.set_retry_policy(fast_retry(0));
  ctx.config().verification = verify::Options::always();

  const auto ha = wl.matrix<float>(n, m);
  const auto hx = wl.vector<float>(m);
  const auto hy0 = wl.vector<float>(m);  // pre-command bytes in y
  host::Buffer<float> a(dev, n * m, 0), x(dev, m, 1), y(dev, m, 2);
  a.write(ha);
  x.write(hx);
  y.write(hy0);
  host::Event e = apps::atax_composed_async<float>(ctx, n, m, a, x, y);
  try {
    e.wait();
    FAIL() << "expected VerificationError";
  } catch (const VerificationError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("composition 'atax'"), std::string::npos);
    // The checker's diagnosis names exactly the channel the injector hit
    // (ground truth recorded by the runtime when the corruption fired).
    const std::string victim = dev.faults().last_victim();
    ASSERT_FALSE(victim.empty());
    EXPECT_NE(msg.find("edge '" + victim + "'"), std::string::npos);
    EXPECT_NE(msg.find("first divergent edge"), std::string::npos);
  }
  EXPECT_EQ(y.to_host(), hy0);  // rolled back; corrupted bits never landed
  EXPECT_TRUE(e.status().failed());
  EXPECT_EQ(ctx.exec_stats().faults_injected, 1u);
  EXPECT_EQ(ctx.exec_stats().sdc_caught, 1u);
}

TEST(VerifyComposed, ChannelCorruptionRecoversBitIdentical) {
  const std::int64_t n = 32, m = 24;
  Workload wl(93);
  const auto ha = wl.matrix<float>(n, m);
  const auto hp = wl.vector<float>(m);
  const auto hr = wl.vector<float>(n);

  auto run = [&](bool with_fault) {
    host::Device dev;
    host::Context ctx(dev);
    if (with_fault) {
      host::FaultConfig fc;
      fc.seed = 32;
      fc.channel_corrupt_rate = 1.0;
      fc.max_faults = 1;
      dev.inject_faults(fc);
    }
    ctx.set_retry_policy(fast_retry(3));
    ctx.config().verification = verify::Options::always();
    host::Buffer<float> a(dev, n * m, 0), p(dev, m, 1), r(dev, n, 2);
    host::Buffer<float> q(dev, n, 1), s(dev, m, 2);
    a.write(ha);
    p.write(hp);
    r.write(hr);
    q.write(std::vector<float>(static_cast<std::size_t>(n), 0.0f));
    s.write(std::vector<float>(static_cast<std::size_t>(m), 0.0f));
    apps::bicg_composed<float>(ctx, n, m, a, p, r, q, s);
    return std::make_tuple(q.to_host(), s.to_host(), ctx.exec_stats());
  };

  const auto [cq, cs, cstats] = run(false);
  const auto [rq, rs, rstats] = run(true);
  EXPECT_EQ(cq, rq);  // recovered, bit-identical to the fault-free run
  EXPECT_EQ(cs, rs);
  EXPECT_EQ(rstats.faults_injected, 1u);
  EXPECT_EQ(rstats.sdc_caught, 1u);
  EXPECT_EQ(rstats.retries, 1u);
  EXPECT_EQ(cstats.sdc_caught, 0u);
}

// Mixed composed workload: all three compositions, repeated, under
// in-flight channel corruption. Every injected fault must be caught
// (sdc_caught == faults_injected) and the final state must match a
// fault-free run bit-for-bit — serially and on the worker pool.
std::tuple<std::vector<std::vector<float>>, host::ExecStats>
run_composed_workload(int workers, bool with_faults) {
  const std::int64_t n = 32, m = 24, len = 400;
  host::Device dev;
  host::Context ctx(dev, stream::Mode::Functional, workers);
  if (with_faults) {
    host::FaultConfig fc;
    fc.seed = 6;
    fc.channel_corrupt_rate = 0.4;
    fc.max_faults = 4;
    dev.inject_faults(fc);
  }
  ctx.set_retry_policy(fast_retry(4));
  ctx.config().verification = verify::Options::always();

  Workload wl(94);
  host::Buffer<float> a(dev, n * m, 0), x(dev, m, 1), y(dev, m, 2);
  host::Buffer<float> p(dev, m, 1), r(dev, n, 2), q(dev, n, 0), s(dev, m, 1);
  host::Buffer<float> w(dev, len, 0), v(dev, len, 1), u(dev, len, 2);
  a.write(wl.matrix<float>(n, m));
  x.write(wl.vector<float>(m));
  y.write(std::vector<float>(static_cast<std::size_t>(m), 0.0f));
  p.write(wl.vector<float>(m));
  r.write(wl.vector<float>(n));
  q.write(std::vector<float>(static_cast<std::size_t>(n), 0.0f));
  s.write(std::vector<float>(static_cast<std::size_t>(m), 0.0f));
  w.write(wl.vector<float>(len));
  v.write(wl.vector<float>(len));
  u.write(wl.vector<float>(len));

  float betas[4] = {};
  for (int round = 0; round < 4; ++round) {
    apps::atax_composed_async<float>(ctx, n, m, a, x, y);
    apps::bicg_composed_async<float>(ctx, n, m, a, p, r, q, s);
    apps::axpydot_composed_async<float>(ctx, len, w, v, u, 0.3f,
                                        &betas[round]);
  }
  ctx.finish();
  std::vector<std::vector<float>> out{y.to_host(), q.to_host(), s.to_host(),
                                      std::vector<float>(betas, betas + 4)};
  return {out, ctx.exec_stats()};
}

TEST(VerifyComposed, MixedCompositionWorkloadAllCaughtSerialAndPool) {
  const auto [clean, clean_stats] = run_composed_workload(0, false);
  const auto [serial, serial_stats] = run_composed_workload(0, true);
  EXPECT_GT(serial_stats.faults_injected, 0u);
  EXPECT_EQ(serial_stats.sdc_caught, serial_stats.faults_injected);
  EXPECT_EQ(clean, serial);
  EXPECT_EQ(serial_stats.degraded, 0u);
  EXPECT_EQ(clean_stats.verify_failures, 0u);

  // Same guarantees out of order: fault and sampling decisions hash
  // (seed, seq), not thread interleaving.
  const auto [pool, pool_stats] = run_composed_workload(4, true);
  EXPECT_EQ(pool_stats.sdc_caught, pool_stats.faults_injected);
  EXPECT_EQ(clean, pool);
  EXPECT_EQ(pool_stats.faults_injected, serial_stats.faults_injected);
}

// --- SilentCorrupt steering: SYRK/SYR2K triangle blind spot ---------------

TEST(VerifyRuntime, SyrkSteeredCorruptionAlwaysLandsInTheTriangle) {
  // SYRK/SYR2K only write one triangle; an unsteered injector could mangle
  // a byte in the never-written half, where the tri-masked checksums are
  // blind by design (BLAS semantics say those bytes are dead). The
  // corrupt_steer hook remaps every draw into the stored triangle, so the
  // fault is always live and always caught.
  const std::int64_t n = 24, k = 10;
  Workload wl(95);
  const auto ha = wl.matrix<float>(n, k);
  const auto hb = wl.matrix<float>(n, k);
  const auto hc = wl.matrix<float>(n, n);

  auto run = [&](bool with_faults, Uplo uplo, bool two_k) {
    host::Device dev;
    host::Context ctx(dev);
    if (with_faults) {
      host::FaultConfig fc;
      fc.seed = 33;
      fc.silent_corrupt_rate = 1.0;
      fc.max_faults = 3;
      dev.inject_faults(fc);
    }
    ctx.set_retry_policy(fast_retry(4));
    ctx.config().verification = verify::Options::always();
    host::Buffer<float> A(dev, n * k, 0), B(dev, n * k, 1), C(dev, n * n, 2);
    A.write(ha);
    B.write(hb);
    C.write(hc);
    if (two_k) {
      ctx.syr2k<float>(uplo, Transpose::None, n, k, 0.5f, A, B, 0.9f, C);
    } else {
      ctx.syrk<float>(uplo, Transpose::None, n, k, 1.25f, A, 0.5f, C);
    }
    return std::make_pair(C.to_host(), ctx.exec_stats());
  };

  for (const bool two_k : {false, true}) {
    const Uplo uplo = two_k ? Uplo::Upper : Uplo::Lower;
    const auto [clean, clean_stats] = run(false, uplo, two_k);
    const auto [rec, rec_stats] = run(true, uplo, two_k);
    EXPECT_EQ(rec_stats.faults_injected, 3u);
    EXPECT_EQ(rec_stats.sdc_caught, rec_stats.faults_injected);
    EXPECT_EQ(clean, rec);  // caught every time, recovered bit-identical
    EXPECT_EQ(clean_stats.sdc_caught, 0u);
  }
}

// --- Adaptive sampling: the rate follows the device's behavior ------------

TEST(VerifyRuntime, AdaptiveSamplingReactsToRejections) {
  const std::int64_t len = 64;
  const auto hx = Workload(96).vector<float>(len);
  auto run = [&](bool with_faults) {
    host::Device dev;
    host::Context ctx(dev);
    if (with_faults) {
      host::FaultConfig fc;
      fc.seed = 34;
      fc.silent_corrupt_rate = 1.0;  // unlimited: every attempt corrupted
      dev.inject_faults(fc);
    }
    ctx.set_retry_policy(fast_retry(1, /*cpu_fallback=*/true));
    ctx.config().verification = verify::Options::sampled(0.25).adaptive();
    host::Buffer<float> x(dev, len, 0);
    for (int i = 0; i < 40; ++i) {
      x.write(hx);  // fresh operand: missed corruption cannot accumulate
      ctx.scal<float>(len, 2.0f, x);
    }
    return ctx.exec_stats();
  };

  // Clean device: every sampled check passes, so the live rate decays
  // below the configured base (never below the floor of base/4).
  const auto clean = run(false);
  EXPECT_GT(clean.verified, 0u);
  EXPECT_GT(clean.adaptive_sample_rate, 0.0);
  EXPECT_LT(clean.adaptive_sample_rate, 0.25);
  EXPECT_GE(clean.adaptive_sample_rate, 0.25 / 4 - 1e-12);
  EXPECT_EQ(clean.verify_failures, 0u);

  // Hostile device: the first caught corruption escalates the rate (x4
  // per rejection), driving coverage toward Always.
  const auto hostile = run(true);
  EXPECT_GT(hostile.verify_failures, 0u);
  EXPECT_GT(hostile.degraded, 0u);
  EXPECT_GT(hostile.adaptive_sample_rate, 0.25);
  EXPECT_GT(hostile.verified, clean.verified);
}

// --- Taint channel: NaN/Inf provenance at module boundaries --------------

TEST(VerifyTaint, TrapNamesTheProducingModule) {
  const std::int64_t n = 32;
  auto hx = Workload(86).vector<float>(n);
  hx[7] = std::numeric_limits<float>::quiet_NaN();
  host::Device dev;
  host::Context ctx(dev);
  ctx.config().verification.trap_nonfinite();
  host::Buffer<float> x(dev, n, 0);
  x.write(hx);
  host::Event e = ctx.scal_async<float>(n, 2.0f, x, 1);
  try {
    e.wait();
    FAIL() << "expected TaintError";
  } catch (const TaintError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("non-finite value"), std::string::npos);
    EXPECT_NE(msg.find("module 'read_x'"), std::string::npos);
    EXPECT_NE(msg.find("channel 'x'"), std::string::npos);
  }
  EXPECT_TRUE(e.status().failed());
  // Deterministic, not transient: no retry could ever change the outcome.
  EXPECT_EQ(ctx.exec_stats().retries, 0u);
}

TEST(VerifyTaint, VerifiedNaNRunSkipsChecksInsteadOfRejecting) {
  // Without the trap, NaN data flows through (IEEE semantics) and the
  // checkers skip their poisoned comparisons: Ok result, NaN output, no
  // spurious corruption verdict.
  const std::int64_t n = 32;
  auto hx = Workload(87).vector<float>(n);
  hx[3] = std::numeric_limits<float>::infinity();
  host::Device dev;
  host::Context ctx(dev);
  ctx.set_retry_policy(fast_retry(2));
  ctx.config().verification = verify::Options::always();
  host::Buffer<float> x(dev, n, 0);
  x.write(hx);
  host::Event e = ctx.scal_async<float>(n, 0.5f, x, 1);
  EXPECT_NO_THROW(e.wait());
  EXPECT_TRUE(e.status().ok());
  EXPECT_TRUE(std::isinf(x.to_host()[3]));
  EXPECT_EQ(ctx.exec_stats().verify_failures, 0u);
}

}  // namespace
}  // namespace fblas
