// Tests for the generic Level-1 design runner: every Level-1 routine is
// parsed from a JSON spec, emitted, executed in the simulator through the
// generic runner, and compared against the reference BLAS — the complete
// specification -> kernels -> result loop.
#include <gtest/gtest.h>

#include "codegen/runner.hpp"
#include "common/workload.hpp"
#include "refblas/level1.hpp"

namespace fblas::codegen {
namespace {

GeneratedDesign make(const std::string& blas, const std::string& precision,
                     int width = 8) {
  const std::string json = std::string("{\"routines\": [{\"blas\": \"") +
                           blas + "\", \"precision\": \"" + precision +
                           "\", \"width\": " + std::to_string(width) + "}]}";
  const auto spec = parse_spec(json);
  return emit(spec.routines[0], sim::stratix10());
}

class RunnerPrecision : public ::testing::TestWithParam<const char*> {};

TEST_P(RunnerPrecision, ScalCopyAxpy) {
  const std::string prec = GetParam();
  const double tol = prec == "single" ? 1e-4 : 1e-12;
  Workload wl(11);
  Level1Inputs in;
  in.x = wl.vector<double>(100);
  in.y = wl.vector<double>(100);
  in.alpha = 2.5;

  auto r = run_level1(make("scal", prec), stream::Mode::Functional, in);
  for (std::size_t i = 0; i < in.x.size(); ++i) {
    EXPECT_NEAR(r.out_x[i], 2.5 * in.x[i], tol);
  }
  r = run_level1(make("copy", prec), stream::Mode::Functional, in);
  for (std::size_t i = 0; i < in.x.size(); ++i) {
    EXPECT_NEAR(r.out_x[i], in.x[i], tol);
  }
  r = run_level1(make("axpy", prec), stream::Mode::Cycle, in);
  for (std::size_t i = 0; i < in.x.size(); ++i) {
    EXPECT_NEAR(r.out_y[i], 2.5 * in.x[i] + in.y[i], tol);
  }
  EXPECT_GT(r.cycles, 0u);
}

TEST_P(RunnerPrecision, Reductions) {
  const std::string prec = GetParam();
  const double tol = prec == "single" ? 1e-2 : 1e-9;
  Workload wl(12);
  Level1Inputs in;
  in.x = wl.vector<double>(333);
  in.y = wl.vector<double>(333);

  const auto dot = run_level1(make("dot", prec), stream::Mode::Functional, in);
  double expect = 0;
  for (std::size_t i = 0; i < in.x.size(); ++i) expect += in.x[i] * in.y[i];
  EXPECT_NEAR(dot.scalar, expect, tol);

  const auto nrm = run_level1(make("nrm2", prec), stream::Mode::Functional,
                              in);
  double ss = 0;
  for (const double v : in.x) ss += v * v;
  EXPECT_NEAR(nrm.scalar, std::sqrt(ss), tol);

  const auto asum = run_level1(make("asum", prec), stream::Mode::Functional,
                               in);
  double as = 0;
  for (const double v : in.x) as += std::abs(v);
  EXPECT_NEAR(asum.scalar, as, tol);

  const auto imax = run_level1(make("iamax", prec), stream::Mode::Functional,
                               in);
  std::vector<double> xd(in.x.begin(), in.x.end());
  EXPECT_EQ(imax.index, ref::iamax<double>(VectorView<const double>(
                            xd.data(), static_cast<std::int64_t>(xd.size()))));
}

TEST_P(RunnerPrecision, RotAndSwap) {
  const std::string prec = GetParam();
  const double tol = prec == "single" ? 1e-4 : 1e-12;
  Workload wl(13);
  Level1Inputs in;
  in.x = wl.vector<double>(64);
  in.y = wl.vector<double>(64);
  in.c = 0.6;
  in.s = 0.8;
  const auto rot = run_level1(make("rot", prec), stream::Mode::Functional, in);
  for (std::size_t i = 0; i < in.x.size(); ++i) {
    EXPECT_NEAR(rot.out_x[i], 0.6 * in.x[i] + 0.8 * in.y[i], tol);
    EXPECT_NEAR(rot.out_y[i], 0.6 * in.y[i] - 0.8 * in.x[i], tol);
  }
  const auto sw = run_level1(make("swap", prec), stream::Mode::Functional, in);
  for (std::size_t i = 0; i < in.x.size(); ++i) {
    EXPECT_NEAR(sw.out_x[i], in.y[i], tol);
    EXPECT_NEAR(sw.out_y[i], in.x[i], tol);
  }
}

TEST_P(RunnerPrecision, ScalarSetupRoutines) {
  const std::string prec = GetParam();
  Level1Inputs in;
  in.x = {3.0, 4.0};
  const auto rotg = run_level1(make("rotg", prec), stream::Mode::Functional,
                               in);
  ASSERT_EQ(rotg.out_x.size(), 4u);  // r, z, c, s
  EXPECT_NEAR(std::abs(rotg.out_x[0]), 5.0, 1e-4);
  in.x = {1.5, 0.5, 2.0, 1.0};  // d1, d2, x1, y1
  const auto rotmg = run_level1(make("rotmg", prec), stream::Mode::Functional,
                                in);
  ASSERT_EQ(rotmg.out_x.size(), 8u);  // flag, H, d1', d2', x1'
}

INSTANTIATE_TEST_SUITE_P(BothPrecisions, RunnerPrecision,
                         ::testing::Values("single", "double"));

TEST(Runner, SdsdotSingleOnly) {
  Level1Inputs in;
  in.x = {1e8, 1.0};
  in.y = {1.0, 1.0};
  in.alpha = 1.0;  // the sb offset
  const auto r = run_level1(make("sdsdot", "single", 4),
                            stream::Mode::Functional, in);
  EXPECT_NEAR(r.scalar, 1e8 + 2.0, 16.0);  // double accumulation held
}

TEST(Runner, RejectsLevel2Designs) {
  const auto spec = parse_spec(R"({"routines": [{"blas": "gemv"}]})");
  const auto design = emit(spec.routines[0], sim::stratix10());
  Level1Inputs in;
  in.x = {1.0};
  EXPECT_THROW(run_level1(design, stream::Mode::Functional, in), ConfigError);
}

TEST(Runner, CycleCountsScaleWithDesignWidth) {
  Workload wl(14);
  Level1Inputs in;
  in.x = wl.vector<double>(4096);
  const auto narrow = run_level1(make("scal", "double", 8),
                                 stream::Mode::Cycle, in);
  const auto wide = run_level1(make("scal", "double", 64),
                               stream::Mode::Cycle, in);
  EXPECT_NEAR(static_cast<double>(narrow.cycles) /
                  static_cast<double>(wide.cycles),
              8.0, 1.5);
}

}  // namespace
}  // namespace fblas::codegen
