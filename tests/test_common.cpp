// Unit tests for the common substrate: types, views, workload, tables.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/routines.hpp"
#include "common/table_printer.hpp"
#include "common/types.hpp"
#include "common/view.hpp"
#include "common/workload.hpp"

namespace fblas {
namespace {

TEST(Types, CeilDivAndRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 1024), 1);
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(12, 4), 12);
}

TEST(Types, PrecisionTraits) {
  EXPECT_EQ(PrecisionTraits<float>::value, Precision::Single);
  EXPECT_EQ(PrecisionTraits<double>::value, Precision::Double);
  EXPECT_EQ(PrecisionTraits<float>::prefix, 's');
  EXPECT_EQ(bytes_of(Precision::Single), 4u);
  EXPECT_EQ(bytes_of(Precision::Double), 8u);
  EXPECT_EQ(to_string(Precision::Double), "double");
}

TEST(VectorView, StridedAccess) {
  std::vector<float> data{0, 1, 2, 3, 4, 5, 6, 7};
  VectorView<float> v(data.data(), 4, 2);
  EXPECT_EQ(v.size(), 4);
  EXPECT_FLOAT_EQ(v[0], 0);
  EXPECT_FLOAT_EQ(v[3], 6);
  v[1] = 42;
  EXPECT_FLOAT_EQ(data[2], 42);
  auto sub = v.sub(1, 2);
  EXPECT_FLOAT_EQ(sub[0], 42);
  EXPECT_FLOAT_EQ(sub[1], 4);
}

TEST(VectorView, RejectsBadIncrement) {
  float x = 0;
  EXPECT_THROW(VectorView<float>(&x, 1, 0), ConfigError);
  EXPECT_THROW(VectorView<float>(&x, -1, 1), ConfigError);
}

TEST(MatrixView, BlockAddressing) {
  std::vector<double> data(12);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = double(i);
  MatrixView<double> A(data.data(), 3, 4);
  EXPECT_DOUBLE_EQ(A(0, 0), 0);
  EXPECT_DOUBLE_EQ(A(2, 3), 11);
  auto B = A.block(1, 1, 2, 2);
  EXPECT_DOUBLE_EQ(B(0, 0), 5);
  EXPECT_DOUBLE_EQ(B(1, 1), 10);
  B(0, 1) = -1;
  EXPECT_DOUBLE_EQ(A(1, 2), -1);
}

TEST(MatrixView, RejectsShortLeadingDimension) {
  std::vector<float> d(12);
  EXPECT_THROW(MatrixView<float>(d.data(), 3, 4, 3), ConfigError);
}

TEST(Workload, Deterministic) {
  Workload a(7), b(7);
  auto va = a.vector<double>(100);
  auto vb = b.vector<double>(100);
  EXPECT_EQ(va, vb);
  for (double x : va) {
    EXPECT_GE(x, -1.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  Workload a(1), b(2);
  EXPECT_NE(a.vector<float>(16), b.vector<float>(16));
}

TEST(Workload, TriangularIsTriangularAndStable) {
  Workload w;
  const std::int64_t n = 8;
  auto lo = w.triangular<double>(n, Uplo::Lower, Diag::NonUnit);
  MatrixView<double> L(lo.data(), n, n);
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_GE(L(i, i), 1.0);
    for (std::int64_t j = i + 1; j < n; ++j) EXPECT_EQ(L(i, j), 0.0);
  }
  auto up = w.triangular<float>(n, Uplo::Upper, Diag::Unit);
  MatrixView<float> U(up.data(), n, n);
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(U(i, i), 1.0f);
    for (std::int64_t j = 0; j < i; ++j) EXPECT_EQ(U(i, j), 0.0f);
  }
}

TEST(ErrorHelpers, RelError) {
  std::vector<double> a{1.0, 2.0}, b{1.0, 2.0};
  EXPECT_EQ(rel_error(a, b), 0.0);
  a[1] = 2.5;
  EXPECT_NEAR(rel_error(a, b), 0.25, 1e-12);
  EXPECT_NEAR(max_abs_diff(a, b), 0.5, 1e-12);
}

TEST(RoutineMetadata, AllTwentyTwoRoutinesRegistered) {
  // Sec. VI: 13 Level-1 + 5 Level-2 + 4 Level-3 = 22 routines.
  int by_level[4] = {0, 0, 0, 0};
  for (int i = 0; i < kRoutineCount; ++i) {
    const RoutineInfo& r = all_routines()[i];
    ASSERT_GE(r.level, 1);
    ASSERT_LE(r.level, 3);
    ++by_level[r.level];
    // Name round-trips through the lookup.
    EXPECT_EQ(routine_from_name(r.name), r.kind) << r.name;
    // Metadata self-consistency.
    EXPECT_GE(r.operands_per_width, 1) << r.name;
    if (r.level >= 2) EXPECT_TRUE(r.streams_matrix) << r.name;
  }
  EXPECT_EQ(by_level[1], 13);
  EXPECT_EQ(by_level[2], 5);
  EXPECT_EQ(by_level[3], 4);
}

TEST(RoutineMetadata, PrecisionPrefixesStrip) {
  EXPECT_EQ(routine_from_name("sdot"), RoutineKind::Dot);
  EXPECT_EQ(routine_from_name("dgemv"), RoutineKind::Gemv);
  EXPECT_EQ(routine_from_name("sdsdot"), RoutineKind::Sdsdot);
  EXPECT_EQ(routine_from_name("dtrsm"), RoutineKind::Trsm);
  EXPECT_THROW(routine_from_name("zherk"), ConfigError);
  EXPECT_THROW(routine_from_name(""), ConfigError);
}

TEST(RoutineMetadata, CircuitClasses) {
  EXPECT_EQ(routine_info(RoutineKind::Scal).circuit, CircuitClass::Map);
  EXPECT_EQ(routine_info(RoutineKind::Dot).circuit, CircuitClass::MapReduce);
  EXPECT_EQ(routine_info(RoutineKind::Gemm).circuit, CircuitClass::Systolic);
  EXPECT_EQ(routine_info(RoutineKind::Dot).operands_per_width, 2);
  EXPECT_EQ(routine_info(RoutineKind::Scal).operands_per_width, 1);
}

TEST(TablePrinter, AlignsAndCounts) {
  TablePrinter t({"Routine", "W", "GOps/s"});
  t.add_row({"DOT", "16", TablePrinter::fmt(12.345, 2)});
  t.add_row({"GEMV", "256", "1.00"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.str();
  EXPECT_NE(s.find("Routine"), std::string::npos);
  EXPECT_NE(s.find("12.35"), std::string::npos);
  EXPECT_NE(s.find("| GEMV"), std::string::npos);
}

TEST(TablePrinter, RejectsAriyMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

TEST(TablePrinter, Formatters) {
  EXPECT_EQ(TablePrinter::fmt_int(42), "42");
  EXPECT_EQ(TablePrinter::fmt_rate(1.28e12), "1.28 TOps/s");
  EXPECT_EQ(TablePrinter::fmt_rate(5.0e9), "5.00 GOps/s");
  EXPECT_EQ(TablePrinter::fmt_time(1.5e-6), "1.5 usec");
  EXPECT_EQ(TablePrinter::fmt_time(0.25), "250.00 msec");
  EXPECT_EQ(TablePrinter::fmt_time(2.0), "2.00 sec");
}

TEST(Require, ThrowsWithContext) {
  try {
    FBLAS_REQUIRE(1 == 2, "impossible arithmetic");
    FAIL() << "should have thrown";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("impossible arithmetic"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace fblas
