// Randomized stress tests: seeded random pipelines of Level-1 modules
// with random widths and channel capacities must always complete (no
// false deadlocks), conserve every element, and compute exactly what the
// composed oracle computes — in both scheduler modes.
#include <gtest/gtest.h>

#include <vector>

#include "common/workload.hpp"
#include "fblas/level1.hpp"
#include "refblas/level1.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas::core {
namespace {

using stream::Graph;
using stream::Mode;

struct StageSpec {
  enum Kind { Scal, Copy, AxpyWithConst } kind;
  int width;
  std::size_t capacity;
  double alpha;
};

/// Builds a random pipeline description from the seed.
std::vector<StageSpec> random_stages(Workload& wl, int count) {
  std::vector<StageSpec> stages;
  for (int i = 0; i < count; ++i) {
    StageSpec s;
    const auto r = wl.next_u64();
    s.kind = static_cast<StageSpec::Kind>(r % 3);
    const int widths[] = {1, 2, 3, 5, 8, 16, 33, 64};
    s.width = widths[(r >> 8) % 8];
    const std::size_t caps[] = {1, 2, 7, 16, 64, 300};
    s.capacity = caps[(r >> 16) % 6];
    s.alpha = 0.5 + static_cast<double>((r >> 24) % 100) / 100.0;
    stages.push_back(s);
  }
  return stages;
}

/// Oracle for the pipeline (axpy stages add a constant vector of 1s).
std::vector<double> oracle(const std::vector<double>& input,
                           const std::vector<StageSpec>& stages) {
  std::vector<double> v = input;
  for (const auto& s : stages) {
    switch (s.kind) {
      case StageSpec::Scal:
        for (auto& x : v) x *= s.alpha;
        break;
      case StageSpec::Copy:
        break;
      case StageSpec::AxpyWithConst:
        for (auto& x : v) x = s.alpha * 1.0 + x;
        break;
    }
  }
  return v;
}

void run_pipeline(std::uint64_t seed, Mode mode) {
  Workload wl(seed);
  const int n_stages = 2 + static_cast<int>(wl.next_u64() % 6);
  const std::int64_t n = 1 + static_cast<std::int64_t>(wl.next_u64() % 700);
  const auto stages = random_stages(wl, n_stages);
  auto input = wl.vector<double>(n);

  Graph g(mode);
  std::vector<stream::Channel<double>*> chans;
  chans.push_back(&g.channel<double>("c0", stages[0].capacity));
  g.spawn("feed", stream::feed(input, *chans[0]));
  for (int i = 0; i < n_stages; ++i) {
    const auto& s = stages[static_cast<std::size_t>(i)];
    chans.push_back(&g.channel<double>("c" + std::to_string(i + 1),
                                       s.capacity));
    auto& in = *chans[static_cast<std::size_t>(i)];
    auto& out = *chans[static_cast<std::size_t>(i + 1)];
    switch (s.kind) {
      case StageSpec::Scal:
        g.spawn("scal" + std::to_string(i),
                scal<double>({s.width}, n, s.alpha, in, out));
        break;
      case StageSpec::Copy:
        g.spawn("copy" + std::to_string(i),
                copy<double>({s.width}, n, in, out));
        break;
      case StageSpec::AxpyWithConst: {
        auto& ones = g.channel<double>("ones" + std::to_string(i),
                                       s.capacity);
        g.spawn("gen" + std::to_string(i),
                stream::generate<double>(n, 1.0, s.width, ones));
        g.spawn("axpy" + std::to_string(i),
                axpy<double>({s.width}, n, s.alpha, ones, in, out));
        break;
      }
    }
  }
  std::vector<double> got;
  g.spawn("collect", stream::collect<double>(n, *chans.back(), got));
  g.run();
  for (const auto& ch : g.channels()) {
    ASSERT_EQ(ch->total_pushed(), ch->total_popped())
        << "seed=" << seed << " channel=" << ch->name();
  }
  const auto expect = oracle(input, stages);
  ASSERT_LT(rel_error(got, expect), 1e-9)
      << "seed=" << seed << " stages=" << n_stages << " n=" << n;
}

TEST(Stress, RandomPipelinesFunctional) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    run_pipeline(seed, Mode::Functional);
  }
}

TEST(Stress, RandomPipelinesCycle) {
  for (std::uint64_t seed = 100; seed <= 130; ++seed) {
    run_pipeline(seed, Mode::Cycle);
  }
}

TEST(Stress, CycleAndFunctionalAgreeBitExactly) {
  // Same seed, both modes: execution order must not change the values
  // (module-local accumulation orders are fixed by the design).
  for (std::uint64_t seed = 500; seed <= 510; ++seed) {
    run_pipeline(seed, Mode::Functional);
    run_pipeline(seed, Mode::Cycle);
  }
}

TEST(Stress, ManyModulesOneGraph) {
  // A wide graph: 64 independent scal lanes in one scheduler.
  Workload wl(999);
  const std::int64_t n = 128;
  Graph g(Mode::Cycle);
  std::vector<std::vector<double>> inputs;
  std::vector<std::vector<double>> outputs(64);
  inputs.reserve(64);
  for (int lane = 0; lane < 64; ++lane) {
    inputs.push_back(wl.vector<double>(n));
    auto& cin = g.channel<double>("in" + std::to_string(lane), 8);
    auto& cout = g.channel<double>("out" + std::to_string(lane), 8);
    g.spawn("feed" + std::to_string(lane), stream::feed(inputs.back(), cin));
    g.spawn("scal" + std::to_string(lane),
            scal<double>({4}, n, 2.0, cin, cout));
    g.spawn("collect" + std::to_string(lane),
            stream::collect<double>(n, cout, outputs[
                static_cast<std::size_t>(lane)]));
  }
  g.run();
  for (int lane = 0; lane < 64; ++lane) {
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_DOUBLE_EQ(outputs[static_cast<std::size_t>(lane)]
                               [static_cast<std::size_t>(i)],
                       2.0 * inputs[static_cast<std::size_t>(lane)]
                                   [static_cast<std::size_t>(i)]);
    }
  }
  EXPECT_EQ(g.scheduler().module_count(), 64u * 3u);
}

}  // namespace
}  // namespace fblas::core
