// Streaming Level-3 modules tested against the reference BLAS oracle:
// systolic-organized GEMM, SYRK via GEMM + triangular store, SYR2K, TRSM.
#include <gtest/gtest.h>

#include <vector>

#include "common/workload.hpp"
#include "fblas/level2.hpp"
#include "fblas/level3.hpp"
#include "refblas/level3.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas::core {
namespace {

using stream::Graph;
using stream::Mode;

template <typename T>
std::vector<T> run_gemm(const GemmConfig& cfg, std::int64_t m, std::int64_t n,
                        std::int64_t k, T alpha, T beta,
                        const std::vector<T>& a, const std::vector<T>& b,
                        const std::vector<T>& c, Mode mode = Mode::Functional,
                        std::uint64_t* cycles = nullptr) {
  Graph g(mode);
  auto& ca = g.channel<T>("A", 256);
  auto& cb = g.channel<T>("B", 256);
  auto& cc = g.channel<T>("Cin", 256);
  auto& out = g.channel<T>("out", 256);
  std::vector<T> result(m * n);
  g.spawn("read_a", read_a_gemm<T>(MatrixView<const T>(a.data(), m, k), cfg,
                                   n, ca));
  g.spawn("read_b", read_b_gemm<T>(MatrixView<const T>(b.data(), k, n), cfg,
                                   m, cb));
  if (beta != T(0)) {
    g.spawn("read_c",
            stream::read_matrix<T>(MatrixView<const T>(c.data(), m, n),
                                   gemm_c_schedule(cfg), 1, cfg.pe_cols, cc));
  }
  g.spawn("gemm", gemm<T>(cfg, m, n, k, alpha, beta, ca, cb, cc, out));
  g.spawn("store_c",
          stream::write_matrix<T>(MatrixView<T>(result.data(), m, n),
                                  gemm_c_schedule(cfg), cfg.pe_cols, out));
  g.run();
  if (cycles != nullptr) *cycles = g.cycles();
  return result;
}

template <typename T>
class StreamGemm : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(StreamGemm, Precisions);

TYPED_TEST(StreamGemm, MatchesOracleAcrossShapesAndTiles) {
  using T = TypeParam;
  Workload wl(301);
  struct Case {
    std::int64_t m, n, k;
    GemmConfig cfg;
  };
  const std::vector<Case> cases = {
      {8, 8, 8, {2, 2, 4, 4}},
      {16, 12, 20, {2, 2, 4, 4}},   // edge tiles on n
      {13, 9, 7, {2, 2, 4, 4}},     // nothing divides anything
      {16, 16, 16, {4, 4, 8, 8}},
      {10, 10, 5, {1, 1, 4, 4}},    // degenerate 1x1 "grid"
  };
  for (const auto& cs : cases) {
    auto a = wl.matrix<T>(cs.m, cs.k);
    auto b = wl.matrix<T>(cs.k, cs.n);
    auto c0 = wl.matrix<T>(cs.m, cs.n);
    auto expect = c0;
    ref::gemm<T>(Transpose::None, Transpose::None, T(1.5),
                 MatrixView<const T>(a.data(), cs.m, cs.k),
                 MatrixView<const T>(b.data(), cs.k, cs.n), T(0.5),
                 MatrixView<T>(expect.data(), cs.m, cs.n));
    auto got = run_gemm<T>(cs.cfg, cs.m, cs.n, cs.k, T(1.5), T(0.5), a, b, c0);
    EXPECT_LT(rel_error(got, expect), 1e-4)
        << "m=" << cs.m << " n=" << cs.n << " k=" << cs.k;
  }
}

TYPED_TEST(StreamGemm, BetaZeroNeverReadsC) {
  using T = TypeParam;
  Workload wl(302);
  const std::int64_t m = 8, n = 8, k = 4;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> c;  // empty: would crash if popped
  std::vector<T> expect(m * n, T(0));
  ref::gemm<T>(Transpose::None, Transpose::None, T(2),
               MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n), T(0),
               MatrixView<T>(expect.data(), m, n));
  auto got = run_gemm<T>(GemmConfig{2, 2, 4, 4}, m, n, k, T(2), T(0), a, b, c);
  EXPECT_LT(rel_error(got, expect), 1e-4);
}

TYPED_TEST(StreamGemm, CycleCountReflectsPeGridThroughput) {
  using T = TypeParam;
  Workload wl(303);
  const std::int64_t m = 16, n = 16, k = 16;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> c;
  auto run_with = [&](GemmConfig cfg) {
    std::uint64_t cycles = 0;
    run_gemm<T>(cfg, m, n, k, T(1), T(0), a, b, c, Mode::Cycle, &cycles);
    return cycles;
  };
  // 4x more PEs at the same tile size => ~4x fewer compute cycles.
  const auto small = run_with(GemmConfig{2, 2, 8, 8});
  const auto big = run_with(GemmConfig{4, 4, 8, 8});
  EXPECT_GT(static_cast<double>(small) / static_cast<double>(big), 2.5);
}

TYPED_TEST(StreamGemm, SyrkViaGemmWithTriangularStore) {
  using T = TypeParam;
  Workload wl(304);
  const std::int64_t n = 12, k = 6;
  auto a = wl.matrix<T>(n, k);
  // Build A^T explicitly for the B-feed (the host API does this with a
  // transposed view read).
  std::vector<T> at(k * n);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t p = 0; p < k; ++p) at[p * n + i] = a[i * k + p];
  for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    std::vector<T> expect(n * n, T(0));
    ref::syrk<T>(uplo, Transpose::None, T(1),
                 MatrixView<const T>(a.data(), n, k), T(0),
                 MatrixView<T>(expect.data(), n, n));
    GemmConfig cfg{2, 2, 4, 4};
    Graph g;
    auto& ca = g.channel<T>("A", 128);
    auto& cb = g.channel<T>("B", 128);
    auto& cc = g.channel<T>("Cin", 4);
    auto& out = g.channel<T>("out", 128);
    std::vector<T> result(n * n, T(0));
    g.spawn("read_a", read_a_gemm<T>(MatrixView<const T>(a.data(), n, k), cfg,
                                     n, ca));
    g.spawn("read_b", read_b_gemm<T>(MatrixView<const T>(at.data(), k, n),
                                     cfg, n, cb));
    g.spawn("gemm", gemm<T>(cfg, n, n, k, T(1), T(0), ca, cb, cc, out));
    g.spawn("store", store_c_triangular<T>(MatrixView<T>(result.data(), n, n),
                                           cfg, uplo, out));
    g.run();
    MatrixView<T> R(result.data(), n, n), E(expect.data(), n, n);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        const bool in_tri = uplo == Uplo::Lower ? j <= i : j >= i;
        if (in_tri) {
          EXPECT_NEAR(R(i, j), E(i, j), 1e-3) << i << "," << j;
        } else {
          EXPECT_EQ(R(i, j), T(0)) << "outside triangle touched";
        }
      }
    }
  }
}

TYPED_TEST(StreamGemm, Syr2kMatchesOracle) {
  using T = TypeParam;
  Workload wl(305);
  const std::int64_t n = 10, k = 7;
  auto a = wl.matrix<T>(n, k);
  auto b = wl.matrix<T>(n, k);
  std::vector<T> at(k * n), bt(k * n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t p = 0; p < k; ++p) {
      at[p * n + i] = a[i * k + p];
      bt[p * n + i] = b[i * k + p];
    }
  }
  std::vector<T> expect(n * n, T(0));
  ref::syr2k<T>(Uplo::Lower, Transpose::None, T(1.5),
                MatrixView<const T>(a.data(), n, k),
                MatrixView<const T>(b.data(), n, k), T(0),
                MatrixView<T>(expect.data(), n, n));
  GemmConfig cfg{2, 2, 4, 4};
  Graph g;
  auto& ca = g.channel<T>("A", 128);
  auto& cb = g.channel<T>("B", 128);
  auto& cat = g.channel<T>("At", 128);
  auto& cbt = g.channel<T>("Bt", 128);
  auto& cc = g.channel<T>("Cin", 4);
  auto& out = g.channel<T>("out", 128);
  std::vector<T> result(n * n, T(0));
  g.spawn("read_a", read_a_gemm<T>(MatrixView<const T>(a.data(), n, k), cfg,
                                   n, ca));
  g.spawn("read_bcol", read_a_gemm<T>(MatrixView<const T>(b.data(), n, k),
                                      cfg, n, cb));
  g.spawn("read_at", read_b_gemm<T>(MatrixView<const T>(at.data(), k, n), cfg,
                                    n, cat));
  g.spawn("read_bt", read_b_gemm<T>(MatrixView<const T>(bt.data(), k, n), cfg,
                                    n, cbt));
  g.spawn("syr2k",
          syr2k<T>(cfg, n, k, T(1.5), T(0), ca, cb, cat, cbt, cc, out));
  g.spawn("store", store_c_triangular<T>(MatrixView<T>(result.data(), n, n),
                                         cfg, Uplo::Lower, out));
  g.run();
  MatrixView<T> R(result.data(), n, n), E(expect.data(), n, n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(R(i, j), E(i, j), 1e-3) << i << "," << j;
    }
  }
}

template <typename T>
std::vector<T> run_trsm(const TrsmConfig& cfg, std::int64_t m, std::int64_t n,
                        T alpha, const std::vector<T>& a,
                        const std::vector<T>& b) {
  Graph g;
  auto& ca = g.channel<T>("A", 128);
  auto& cb = g.channel<T>("B", 128);
  auto& out = g.channel<T>("X", 128);
  std::vector<T> rows_in_solve_order;
  // B rows must arrive in solve order.
  std::vector<T> b_solve(m * n);
  for (std::int64_t s = 0; s < m; ++s) {
    const std::int64_t i = cfg.uplo == Uplo::Lower ? s : m - 1 - s;
    for (std::int64_t c = 0; c < n; ++c) b_solve[s * n + c] = b[i * n + c];
  }
  g.spawn("read_a", read_triangular<T>(MatrixView<const T>(a.data(), m, m),
                                       cfg.uplo, cfg.width, ca));
  g.spawn("feed_b", stream::feed(b_solve, cb));
  g.spawn("trsm", trsm<T>(cfg, m, n, alpha, ca, cb, out));
  g.spawn("collect", stream::collect<T>(m * n, out, rows_in_solve_order));
  g.run();
  std::vector<T> x(m * n);
  for (std::int64_t s = 0; s < m; ++s) {
    const std::int64_t i = cfg.uplo == Uplo::Lower ? s : m - 1 - s;
    for (std::int64_t c = 0; c < n; ++c) {
      x[i * n + c] = rows_in_solve_order[s * n + c];
    }
  }
  return x;
}

TYPED_TEST(StreamGemm, TrsmBothUplosMatchOracle) {
  using T = TypeParam;
  Workload wl(306);
  const std::int64_t m = 14, n = 9;
  for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    for (Diag dg : {Diag::NonUnit, Diag::Unit}) {
      auto a = wl.triangular<T>(m, uplo, dg);
      auto b = wl.matrix<T>(m, n);
      auto expect = b;
      ref::trsm<T>(Side::Left, uplo, Transpose::None, dg, T(1.5),
                   MatrixView<const T>(a.data(), m, m),
                   MatrixView<T>(expect.data(), m, n));
      TrsmConfig cfg{uplo, dg, 8};
      auto got = run_trsm<T>(cfg, m, n, T(1.5), a, b);
      EXPECT_LT(rel_error(got, expect), 1e-3)
          << "uplo=" << int(uplo) << " diag=" << int(dg);
    }
  }
}

TYPED_TEST(StreamGemm, ConfigValidation) {
  using T = TypeParam;
  (void)sizeof(T);
  GemmConfig bad{4, 4, 10, 8};  // TR not a multiple of PR
  EXPECT_THROW(bad.validate(), ConfigError);
  GemmConfig good{4, 4, 12, 8};
  EXPECT_NO_THROW(good.validate());
  EXPECT_DOUBLE_EQ(good.ratio(), 6.0);
}

TYPED_TEST(StreamGemm, IoOpsFormula) {
  using T = TypeParam;
  (void)sizeof(T);
  GemmConfig cfg{4, 4, 16, 16};
  // m=n=k=64, 4x4 C tiles: A read 4 times, B read 4 times, C written once.
  EXPECT_EQ(gemm_io_ops(cfg, 64, 64, 64, false),
            64 * 64 * 4 + 64 * 64 * 4 + 64 * 64);
  EXPECT_EQ(gemm_io_ops(cfg, 64, 64, 64, true),
            64 * 64 * 4 + 64 * 64 * 4 + 2 * 64 * 64);
}

}  // namespace
}  // namespace fblas::core
