// Tests for the explicit PE-grid systolic array: numerical agreement with
// the reference BLAS and with the core library's time-multiplexed GEMM
// module, cycle-count formula, load balance, constant fan-out.
#include <gtest/gtest.h>

#include <vector>

#include "common/workload.hpp"
#include "fblas/level3.hpp"
#include "refblas/level3.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"
#include "systolic/systolic_array.hpp"

namespace fblas::systolic {
namespace {

template <typename T>
class Systolic : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(Systolic, Precisions);

TYPED_TEST(Systolic, MatchesOracleExactGrid) {
  using T = TypeParam;
  Workload wl(401);
  const std::int64_t m = 4, n = 4, k = 8;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> c(m * n, T(0)), expect(m * n, T(0));
  ref::gemm<T>(Transpose::None, Transpose::None, T(1),
               MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n), T(0),
               MatrixView<T>(expect.data(), m, n));
  SystolicArray<T> arr(4, 4);
  arr.multiply(MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n),
               MatrixView<T>(c.data(), m, n));
  EXPECT_LT(rel_error(c, expect), 1e-5);
}

TYPED_TEST(Systolic, MatchesOracleMultiTileAndEdges) {
  using T = TypeParam;
  Workload wl(402);
  // Non-divisible everything: 4x3 grid over a 10x7 result.
  const std::int64_t m = 10, n = 7, k = 9;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> c(m * n, T(0)), expect(m * n, T(0));
  ref::gemm<T>(Transpose::None, Transpose::None, T(1),
               MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n), T(0),
               MatrixView<T>(expect.data(), m, n));
  SystolicArray<T> arr(4, 3);
  arr.multiply(MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n),
               MatrixView<T>(c.data(), m, n));
  EXPECT_LT(rel_error(c, expect), 1e-5);
}

TYPED_TEST(Systolic, CycleCountFormula) {
  using T = TypeParam;
  Workload wl(403);
  const std::int64_t m = 8, n = 8, k = 16;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> c(m * n, T(0));
  SystolicArray<T> arr(4, 4);
  const auto cycles = arr.multiply(MatrixView<const T>(a.data(), m, k),
                                   MatrixView<const T>(b.data(), k, n),
                                   MatrixView<T>(c.data(), m, n));
  // 4 tiles, each k + PR-1 + PC-1 + PR cycles.
  EXPECT_EQ(cycles, 4u * (16 + 3 + 3 + 4));
}

TYPED_TEST(Systolic, PerfectLoadBalanceOnDivisibleProblem) {
  using T = TypeParam;
  Workload wl(404);
  const std::int64_t m = 8, n = 8, k = 12;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> c(m * n, T(0));
  SystolicArray<T> arr(4, 4);
  arr.multiply(MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n),
               MatrixView<T>(c.data(), m, n));
  // Every PE performs exactly k MACs per tile, 4 tiles: uniform load.
  for (int r = 0; r < 4; ++r) {
    for (int cc = 0; cc < 4; ++cc) {
      EXPECT_EQ(arr.pe_macs(r, cc), 4u * 12u) << "PE(" << r << "," << cc << ")";
    }
  }
  EXPECT_EQ(arr.total_macs(), static_cast<std::uint64_t>(m * n * k));
}

TYPED_TEST(Systolic, ConstantFanout) {
  using T = TypeParam;
  // The scalability property of Sec. III-C: connections per PE do not
  // grow with the grid.
  EXPECT_EQ(SystolicArray<T>::connections_per_pe(), 6);
}

TYPED_TEST(Systolic, SinglePeDegeneratesToScalarMac) {
  using T = TypeParam;
  std::vector<T> a{1, 2, 3}, b{4, 5, 6};  // 1x3 times 3x1
  std::vector<T> c(1, T(0));
  SystolicArray<T> arr(1, 1);
  arr.multiply(MatrixView<const T>(a.data(), 1, 3),
               MatrixView<const T>(b.data(), 3, 1),
               MatrixView<T>(c.data(), 1, 1));
  EXPECT_NEAR(c[0], 32.0, 1e-6);
}

TYPED_TEST(Systolic, AgreesWithTimeMultiplexedGemmModule) {
  // The explicit PE grid and the single-kernel time-multiplexed module
  // (fblas::core::gemm) are two realizations of the same architecture;
  // they must agree with each other, not just with the oracle.
  using T = TypeParam;
  Workload wl(405);
  const std::int64_t m = 16, n = 12, k = 20;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> c_grid(m * n, T(0));
  SystolicArray<T> arr(4, 4);
  arr.multiply(MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n),
               MatrixView<T>(c_grid.data(), m, n));

  const core::GemmConfig cfg{4, 4, 8, 8};
  stream::Graph g;
  auto& ca = g.channel<T>("A", 128);
  auto& cb = g.channel<T>("B", 128);
  auto& cc = g.channel<T>("Cin", 4);
  auto& out = g.channel<T>("out", 128);
  std::vector<T> c_module(m * n, T(0));
  g.spawn("read_A", core::read_a_gemm<T>(MatrixView<const T>(a.data(), m, k),
                                         cfg, n, ca));
  g.spawn("read_B", core::read_b_gemm<T>(MatrixView<const T>(b.data(), k, n),
                                         cfg, m, cb));
  g.spawn("gemm", core::gemm<T>(cfg, m, n, k, T(1), T(0), ca, cb, cc, out));
  g.spawn("store",
          stream::write_matrix<T>(MatrixView<T>(c_module.data(), m, n),
                                  core::gemm_c_schedule(cfg), cfg.pe_cols,
                                  out));
  g.run();
  EXPECT_LT(rel_error(c_grid, c_module), 1e-5);
}

TYPED_TEST(Systolic, RejectsBadShapes) {
  using T = TypeParam;
  EXPECT_THROW(SystolicArray<T>(0, 4), ConfigError);
  SystolicArray<T> arr(2, 2);
  std::vector<T> a(4), b(6), c(4);
  EXPECT_THROW(arr.multiply(MatrixView<const T>(a.data(), 2, 2),
                            MatrixView<const T>(b.data(), 3, 2),
                            MatrixView<T>(c.data(), 2, 2)),
               ConfigError);
}

}  // namespace
}  // namespace fblas::systolic
