// Tests for the explicit PE-grid systolic array: numerical agreement with
// the reference BLAS and with the core library's time-multiplexed GEMM
// module, cycle-count formula, load balance, constant fan-out.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/workload.hpp"
#include "fblas/level3.hpp"
#include "refblas/level3.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"
#include "systolic/systolic_array.hpp"

namespace fblas::systolic {
namespace {

template <typename T>
class Systolic : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(Systolic, Precisions);

TYPED_TEST(Systolic, MatchesOracleExactGrid) {
  using T = TypeParam;
  Workload wl(401);
  const std::int64_t m = 4, n = 4, k = 8;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> c(m * n, T(0)), expect(m * n, T(0));
  ref::gemm<T>(Transpose::None, Transpose::None, T(1),
               MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n), T(0),
               MatrixView<T>(expect.data(), m, n));
  SystolicArray<T> arr(4, 4);
  arr.multiply(MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n),
               MatrixView<T>(c.data(), m, n));
  EXPECT_LT(rel_error(c, expect), 1e-5);
}

TYPED_TEST(Systolic, MatchesOracleMultiTileAndEdges) {
  using T = TypeParam;
  Workload wl(402);
  // Non-divisible everything: 4x3 grid over a 10x7 result.
  const std::int64_t m = 10, n = 7, k = 9;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> c(m * n, T(0)), expect(m * n, T(0));
  ref::gemm<T>(Transpose::None, Transpose::None, T(1),
               MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n), T(0),
               MatrixView<T>(expect.data(), m, n));
  SystolicArray<T> arr(4, 3);
  arr.multiply(MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n),
               MatrixView<T>(c.data(), m, n));
  EXPECT_LT(rel_error(c, expect), 1e-5);
}

TYPED_TEST(Systolic, CycleCountFormula) {
  using T = TypeParam;
  Workload wl(403);
  const std::int64_t m = 8, n = 8, k = 16;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> c(m * n, T(0));
  SystolicArray<T> arr(4, 4);
  const auto cycles = arr.multiply(MatrixView<const T>(a.data(), m, k),
                                   MatrixView<const T>(b.data(), k, n),
                                   MatrixView<T>(c.data(), m, n));
  // 4 tiles, each k + PR-1 + PC-1 + PR cycles.
  EXPECT_EQ(cycles, 4u * (16 + 3 + 3 + 4));
}

TYPED_TEST(Systolic, PerfectLoadBalanceOnDivisibleProblem) {
  using T = TypeParam;
  Workload wl(404);
  const std::int64_t m = 8, n = 8, k = 12;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> c(m * n, T(0));
  SystolicArray<T> arr(4, 4);
  arr.multiply(MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n),
               MatrixView<T>(c.data(), m, n));
  // Every PE performs exactly k MACs per tile, 4 tiles: uniform load.
  for (int r = 0; r < 4; ++r) {
    for (int cc = 0; cc < 4; ++cc) {
      EXPECT_EQ(arr.pe_macs(r, cc), 4u * 12u) << "PE(" << r << "," << cc << ")";
    }
  }
  EXPECT_EQ(arr.total_macs(), static_cast<std::uint64_t>(m * n * k));
}

TYPED_TEST(Systolic, ConstantFanout) {
  using T = TypeParam;
  // The scalability property of Sec. III-C: connections per PE do not
  // grow with the grid.
  EXPECT_EQ(SystolicArray<T>::connections_per_pe(), 6);
}

TYPED_TEST(Systolic, SinglePeDegeneratesToScalarMac) {
  using T = TypeParam;
  std::vector<T> a{1, 2, 3}, b{4, 5, 6};  // 1x3 times 3x1
  std::vector<T> c(1, T(0));
  SystolicArray<T> arr(1, 1);
  arr.multiply(MatrixView<const T>(a.data(), 1, 3),
               MatrixView<const T>(b.data(), 3, 1),
               MatrixView<T>(c.data(), 1, 1));
  EXPECT_NEAR(c[0], 32.0, 1e-6);
}

TYPED_TEST(Systolic, AgreesWithTimeMultiplexedGemmModule) {
  // The explicit PE grid and the single-kernel time-multiplexed module
  // (fblas::core::gemm) are two realizations of the same architecture;
  // they must agree with each other, not just with the oracle.
  using T = TypeParam;
  Workload wl(405);
  const std::int64_t m = 16, n = 12, k = 20;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> c_grid(m * n, T(0));
  SystolicArray<T> arr(4, 4);
  arr.multiply(MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n),
               MatrixView<T>(c_grid.data(), m, n));

  const core::GemmConfig cfg{4, 4, 8, 8};
  stream::Graph g;
  auto& ca = g.channel<T>("A", 128);
  auto& cb = g.channel<T>("B", 128);
  auto& cc = g.channel<T>("Cin", 4);
  auto& out = g.channel<T>("out", 128);
  std::vector<T> c_module(m * n, T(0));
  g.spawn("read_A", core::read_a_gemm<T>(MatrixView<const T>(a.data(), m, k),
                                         cfg, n, ca));
  g.spawn("read_B", core::read_b_gemm<T>(MatrixView<const T>(b.data(), k, n),
                                         cfg, m, cb));
  g.spawn("gemm", core::gemm<T>(cfg, m, n, k, T(1), T(0), ca, cb, cc, out));
  g.spawn("store",
          stream::write_matrix<T>(MatrixView<T>(c_module.data(), m, n),
                                  core::gemm_c_schedule(cfg), cfg.pe_cols,
                                  out));
  g.run();
  EXPECT_LT(rel_error(c_grid, c_module), 1e-5);
}

// --- Ragged-tile properties ----------------------------------------------
// m, n not multiples of PR, PC: partial tiles on the right and bottom
// edges. The grid's per-PE accumulation order (ascending j) matches the
// reference GEMM's, so for alpha=1, beta=0 the results must agree BIT FOR
// BIT — the property the in-grid replay correction also relies on.

TYPED_TEST(Systolic, RaggedTilesBitAgreeWithReference) {
  using T = TypeParam;
  Workload wl(406);
  struct Case {
    std::int64_t m, n, k;
    int pr, pc;
  };
  const Case cases[] = {
      {10, 7, 9, 4, 3},  {5, 5, 1, 4, 4},   {13, 11, 17, 5, 2},
      {3, 9, 4, 8, 8},   {16, 16, 32, 4, 4}, {7, 1, 6, 2, 3},
  };
  for (const Case& tc : cases) {
    auto a = wl.matrix<T>(tc.m, tc.k);
    auto b = wl.matrix<T>(tc.k, tc.n);
    std::vector<T> c(static_cast<std::size_t>(tc.m * tc.n), T(0));
    std::vector<T> expect(static_cast<std::size_t>(tc.m * tc.n), T(0));
    ref::gemm<T>(Transpose::None, Transpose::None, T(1),
                 MatrixView<const T>(a.data(), tc.m, tc.k),
                 MatrixView<const T>(b.data(), tc.k, tc.n), T(0),
                 MatrixView<T>(expect.data(), tc.m, tc.n));
    SystolicArray<T> arr(tc.pr, tc.pc);
    arr.multiply(MatrixView<const T>(a.data(), tc.m, tc.k),
                 MatrixView<const T>(b.data(), tc.k, tc.n),
                 MatrixView<T>(c.data(), tc.m, tc.n));
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(c[i], expect[i])
          << "element " << i << " of m=" << tc.m << " n=" << tc.n
          << " k=" << tc.k << " grid " << tc.pr << "x" << tc.pc;
    }
  }
}

TYPED_TEST(Systolic, PartialTileMacAccounting) {
  using T = TypeParam;
  Workload wl(407);
  // 10x7 result on a 4x3 grid: rows 0-1 of the grid see 3 row-tiles,
  // rows 2-3 see 2 (the last row-tile is 2 high); columns 0 sees 3
  // column-tiles, columns 1-2 see 2 (the last column-tile is 1 wide).
  const std::int64_t m = 10, n = 7, k = 9;
  const int pr = 4, pc = 3;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> c(static_cast<std::size_t>(m * n), T(0));
  SystolicArray<T> arr(pr, pc);
  arr.multiply(MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n),
               MatrixView<T>(c.data(), m, n));
  std::uint64_t total = 0;
  for (int r = 0; r < pr; ++r) {
    // Row-tiles covering grid row r: full tiles plus the partial one if
    // its height exceeds r. Same for columns.
    const std::uint64_t row_tiles =
        static_cast<std::uint64_t>(m / pr) + ((m % pr) > r ? 1u : 0u);
    for (int cc = 0; cc < pc; ++cc) {
      const std::uint64_t col_tiles =
          static_cast<std::uint64_t>(n / pc) + ((n % pc) > cc ? 1u : 0u);
      const std::uint64_t want = row_tiles * col_tiles *
                                 static_cast<std::uint64_t>(k);
      EXPECT_EQ(arr.pe_macs(r, cc), want)
          << "PE(" << r << "," << cc << ")";
      total += want;
    }
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(m * n * k));
  EXPECT_EQ(arr.total_macs(), total);
}

// --- In-grid ABFT at the engine level -------------------------------------

TYPED_TEST(Systolic, AbftCleanRunDetectsNothingAndCostsThreeCycles) {
  using T = TypeParam;
  Workload wl(408);
  const std::int64_t m = 8, n = 8, k = 16;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> plain(static_cast<std::size_t>(m * n), T(0));
  std::vector<T> checked(static_cast<std::size_t>(m * n), T(0));
  SystolicArray<T> arr(4, 4);
  const auto base = arr.multiply(MatrixView<const T>(a.data(), m, k),
                                 MatrixView<const T>(b.data(), k, n),
                                 MatrixView<T>(plain.data(), m, n));
  SystolicArray<T> armed(4, 4);
  armed.set_abft(AbftConfig{true, true, 32.0});
  const auto cycles = armed.multiply(MatrixView<const T>(a.data(), m, k),
                                     MatrixView<const T>(b.data(), k, n),
                                     MatrixView<T>(checked.data(), m, n));
  // The checksum rank costs a constant 3 cycles per tile (4 tiles here)
  // and never perturbs the data path.
  EXPECT_EQ(cycles, base + 4u * 3u);
  EXPECT_EQ(checked, plain);
  const AbftReport& report = armed.report();
  EXPECT_EQ(report.tiles_checked, 4u);
  EXPECT_EQ(report.faults_detected, 0u);
  EXPECT_EQ(report.faults_localized, 0u);
  EXPECT_EQ(report.faults_corrected, 0u);
  EXPECT_EQ(report.uncorrectable_tiles, 0u);
}

TYPED_TEST(Systolic, AbftLocalizesAndCorrectsArmedFaultBitIdentically) {
  using T = TypeParam;
  Workload wl(409);
  const std::int64_t m = 10, n = 7, k = 9;  // ragged: partial victim tiles
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> expect(static_cast<std::size_t>(m * n), T(0));
  ref::gemm<T>(Transpose::None, Transpose::None, T(1),
               MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n), T(0),
               MatrixView<T>(expect.data(), m, n));
  // One fault in every tile of the sweep (3x3 tiles on a 4x3 grid), each
  // at a different PE/MAC — all must be localized and corrected in place.
  int plan_no = 0;
  std::vector<T> c(static_cast<std::size_t>(m * n), T(0));
  SystolicArray<T> arr(4, 3);
  arr.set_abft(AbftConfig{true, true, 32.0});
  for (std::int64_t ti = 0; ti < 3; ++ti) {
    for (std::int64_t tj = 0; tj < 3; ++tj) {
      PeFaultPlan plan;
      plan.tile = ti * 3 + tj;
      const std::int64_t th = std::min<std::int64_t>(4, m - ti * 4);
      const std::int64_t tw = std::min<std::int64_t>(3, n - tj * 3);
      plan.r = static_cast<int>(plan_no % th);
      plan.c = static_cast<int>((plan_no / 2) % tw);
      plan.mac = plan_no % k;
      arr.arm_fault(plan);
      ++plan_no;
    }
  }
  arr.multiply(MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n),
               MatrixView<T>(c.data(), m, n));
  EXPECT_EQ(arr.faults_fired(), 9u);
  const AbftReport& report = arr.report();
  EXPECT_EQ(report.faults_detected, 9u);
  EXPECT_EQ(report.faults_localized, 9u);
  EXPECT_EQ(report.faults_corrected, 9u);
  EXPECT_EQ(report.uncorrectable_tiles, 0u);
  // Corrected result is bit-identical to the fault-free reference.
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c[i], expect[i]) << "element " << i;
  }
  // Per-PE fault counters sum to the faults localized.
  std::uint64_t fault_sum = 0;
  for (int r = 0; r < 4; ++r) {
    for (int cc = 0; cc < 3; ++cc) fault_sum += arr.pe_faults(r, cc);
  }
  EXPECT_EQ(fault_sum, 9u);
}

TYPED_TEST(Systolic, AbftDetectOnlyLeavesFaultInPlace) {
  using T = TypeParam;
  Workload wl(410);
  const std::int64_t m = 8, n = 8, k = 12;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> expect(static_cast<std::size_t>(m * n), T(0));
  ref::gemm<T>(Transpose::None, Transpose::None, T(1),
               MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n), T(0),
               MatrixView<T>(expect.data(), m, n));
  std::vector<T> c(static_cast<std::size_t>(m * n), T(0));
  SystolicArray<T> arr(4, 4);
  arr.set_abft(AbftConfig{true, /*correct_single_faults=*/false, 32.0});
  PeFaultPlan plan;
  plan.tile = 2;  // tile (1, 0): rows 4-7, cols 0-3
  plan.r = 1;
  plan.c = 2;
  plan.mac = 5;
  arr.arm_fault(plan);
  arr.multiply(MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n),
               MatrixView<T>(c.data(), m, n));
  const AbftReport& report = arr.report();
  EXPECT_EQ(report.faults_detected, 1u);
  EXPECT_EQ(report.faults_localized, 1u);
  EXPECT_EQ(report.faults_corrected, 0u);
  ASSERT_EQ(report.faults.size(), 1u);
  EXPECT_EQ(report.faults[0].tile_row, 1);
  EXPECT_EQ(report.faults[0].tile_col, 0);
  EXPECT_EQ(report.faults[0].r, 1);
  EXPECT_EQ(report.faults[0].c, 2);
  EXPECT_FALSE(report.faults[0].corrected);
  // The corrupted accumulator reached C: exactly the diagnosed element
  // diverges, everything else is untouched.
  const std::size_t bad = static_cast<std::size_t>((4 + 1) * n + (0 + 2));
  EXPECT_NE(c[bad], expect[bad]);
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i != bad) {
      EXPECT_EQ(c[i], expect[i]) << "element " << i;
    }
  }
}

TYPED_TEST(Systolic, AbftDoubleFaultIsUncorrectable) {
  using T = TypeParam;
  Workload wl(411);
  const std::int64_t m = 8, n = 8, k = 12;
  auto a = wl.matrix<T>(m, k);
  auto b = wl.matrix<T>(k, n);
  std::vector<T> c(static_cast<std::size_t>(m * n), T(0));
  SystolicArray<T> arr(4, 4);
  arr.set_abft(AbftConfig{true, true, 32.0});
  PeFaultPlan first{1, 0, 1, 3};
  PeFaultPlan second{1, 2, 3, 7};  // same tile, distinct PE
  arr.arm_fault(first);
  arr.arm_fault(second);
  arr.multiply(MatrixView<const T>(a.data(), m, k),
               MatrixView<const T>(b.data(), k, n),
               MatrixView<T>(c.data(), m, n));
  EXPECT_EQ(arr.faults_fired(), 2u);
  const AbftReport& report = arr.report();
  EXPECT_EQ(report.faults_detected, 1u);  // one bad tile
  EXPECT_EQ(report.faults_corrected, 0u);
  EXPECT_EQ(report.uncorrectable_tiles, 1u);
  EXPECT_NE(report.first_uncorrectable.find("tile (0, 1)"),
            std::string::npos)
      << report.first_uncorrectable;
}

TYPED_TEST(Systolic, RejectsBadShapes) {
  using T = TypeParam;
  EXPECT_THROW(SystolicArray<T>(0, 4), ConfigError);
  SystolicArray<T> arr(2, 2);
  std::vector<T> a(4), b(6), c(4);
  EXPECT_THROW(arr.multiply(MatrixView<const T>(a.data(), 2, 2),
                            MatrixView<const T>(b.data(), 3, 2),
                            MatrixView<T>(c.data(), 2, 2)),
               ConfigError);
}

}  // namespace
}  // namespace fblas::systolic
