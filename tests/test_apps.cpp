// Composed-application tests (Sec. V / VI-C): numerical agreement of the
// streaming compositions, host-layer baselines and CPU references; the
// ATAX deadlock/channel-sizing behaviour; cycle-mode speedups of the
// streaming versions over the host-layer versions (the Fig. 11 effect).
#include <gtest/gtest.h>

#include "apps/atax.hpp"
#include "apps/axpydot.hpp"
#include "apps/bicg.hpp"
#include "apps/gemver.hpp"
#include "apps/gesummv.hpp"
#include "common/workload.hpp"
#include "mdag/auto_partition.hpp"
#include "mdag/io_volume.hpp"
#include "mdag/validity.hpp"

namespace fblas::apps {
namespace {

using stream::Mode;

template <typename T>
class Apps : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(Apps, Precisions);

TYPED_TEST(Apps, AxpydotStreamingMatchesCpu) {
  using T = TypeParam;
  Workload wl(701);
  const std::int64_t n = 500;
  auto w = wl.vector<T>(n);
  auto v = wl.vector<T>(n);
  auto u = wl.vector<T>(n);
  const T alpha = T(0.75);
  const T expect = axpydot_cpu<T>(VectorView<const T>(w.data(), n),
                                  VectorView<const T>(v.data(), n),
                                  VectorView<const T>(u.data(), n), alpha);
  const auto got = axpydot_streaming<T>(
      sim::stratix10(), Mode::Functional, 16, VectorView<const T>(w.data(), n),
      VectorView<const T>(v.data(), n), VectorView<const T>(u.data(), n),
      alpha);
  EXPECT_NEAR(got.beta, expect, 1e-3 * n);
}

TYPED_TEST(Apps, AxpydotHostLayerMatchesCpu) {
  using T = TypeParam;
  Workload wl(702);
  const std::int64_t n = 300;
  auto w = wl.vector<T>(n);
  auto v = wl.vector<T>(n);
  auto u = wl.vector<T>(n);
  host::Device dev;
  host::Context ctx(dev);
  const auto got = axpydot_host_layer<T>(ctx, VectorView<const T>(w.data(), n),
                                         VectorView<const T>(v.data(), n),
                                         VectorView<const T>(u.data(), n),
                                         T(1.5));
  const T expect = axpydot_cpu<T>(VectorView<const T>(w.data(), n),
                                  VectorView<const T>(v.data(), n),
                                  VectorView<const T>(u.data(), n), T(1.5));
  EXPECT_NEAR(got.beta, expect, 1e-3 * n);
}

TEST(AppsSpeedup, AxpydotStreamingBeatsHostLayer) {
  // Cycle-mode speedup: paper expects ~3 from the model and ~4 measured
  // (the host-layer AXPY reads and writes z on one bank).
  Workload wl(703);
  const std::int64_t n = 1 << 14;
  auto w = wl.vector<float>(n);
  auto v = wl.vector<float>(n);
  auto u = wl.vector<float>(n);
  const auto streaming = axpydot_streaming<float>(
      sim::stratix10(), Mode::Cycle, 16, VectorView<const float>(w.data(), n),
      VectorView<const float>(v.data(), n),
      VectorView<const float>(u.data(), n), 2.0f);
  host::Device dev(sim::DeviceId::Stratix10);
  host::Context ctx(dev, Mode::Cycle);
  ctx.config().width = 16;
  const auto host = axpydot_host_layer<float>(
      ctx, VectorView<const float>(w.data(), n),
      VectorView<const float>(v.data(), n),
      VectorView<const float>(u.data(), n), 2.0f);
  EXPECT_NEAR(host.beta, streaming.beta, 1e-2);
  const double speedup = static_cast<double>(host.cycles) /
                         static_cast<double>(streaming.cycles);
  EXPECT_GT(speedup, 2.5);
  EXPECT_LT(speedup, 6.0);
}

TYPED_TEST(Apps, BicgStreamingMatchesCpu) {
  using T = TypeParam;
  Workload wl(704);
  const std::int64_t n = 48, m = 36;
  auto a = wl.matrix<T>(n, m);
  auto p = wl.vector<T>(m);
  auto r = wl.vector<T>(n);
  const auto expect = bicg_cpu<T>(MatrixView<const T>(a.data(), n, m),
                                  VectorView<const T>(p.data(), m),
                                  VectorView<const T>(r.data(), n));
  const auto got = bicg_streaming<T>(
      sim::stratix10(), Mode::Functional, 8, 16,
      MatrixView<const T>(a.data(), n, m), VectorView<const T>(p.data(), m),
      VectorView<const T>(r.data(), n));
  EXPECT_LT(rel_error(got.q, expect.q), 1e-4);
  EXPECT_LT(rel_error(got.s, expect.s), 1e-4);
}

TYPED_TEST(Apps, BicgHostLayerMatchesCpu) {
  using T = TypeParam;
  Workload wl(705);
  const std::int64_t n = 32, m = 24;
  auto a = wl.matrix<T>(n, m);
  auto p = wl.vector<T>(m);
  auto r = wl.vector<T>(n);
  host::Device dev;
  host::Context ctx(dev);
  ctx.config().width = 8;
  ctx.config().tile_rows = 16;
  ctx.config().tile_cols = 16;
  const auto got = bicg_host_layer<T>(ctx, MatrixView<const T>(a.data(), n, m),
                                      VectorView<const T>(p.data(), m),
                                      VectorView<const T>(r.data(), n));
  const auto expect = bicg_cpu<T>(MatrixView<const T>(a.data(), n, m),
                                  VectorView<const T>(p.data(), m),
                                  VectorView<const T>(r.data(), n));
  EXPECT_LT(rel_error(got.q, expect.q), 1e-4);
  EXPECT_LT(rel_error(got.s, expect.s), 1e-4);
}

TEST(AppsSpeedup, BicgStreamingReadsAOnce) {
  // The streaming version halves the A traffic; the speedup is bounded by
  // ~2 and the paper measures <= 1.45.
  Workload wl(706);
  const std::int64_t n = 256, m = 256;
  auto a = wl.matrix<float>(n, m);
  auto p = wl.vector<float>(m);
  auto r = wl.vector<float>(n);
  const auto streaming = bicg_streaming<float>(
      sim::stratix10(), Mode::Cycle, 16, 64,
      MatrixView<const float>(a.data(), n, m),
      VectorView<const float>(p.data(), m),
      VectorView<const float>(r.data(), n));
  host::Device dev(sim::DeviceId::Stratix10);
  host::Context ctx(dev, Mode::Cycle);
  ctx.config().width = 16;
  ctx.config().tile_rows = 64;
  ctx.config().tile_cols = 64;
  const auto host = bicg_host_layer<float>(
      ctx, MatrixView<const float>(a.data(), n, m),
      VectorView<const float>(p.data(), m),
      VectorView<const float>(r.data(), n));
  const double speedup = static_cast<double>(host.cycles) /
                         static_cast<double>(streaming.cycles);
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 3.0);
}

TYPED_TEST(Apps, AtaxStreamingWithSizedChannelMatchesCpu) {
  using T = TypeParam;
  Workload wl(707);
  const std::int64_t n = 40, m = 24;
  const std::int64_t tile = 8;
  auto a = wl.matrix<T>(n, m);
  auto x = wl.vector<T>(m);
  const auto expect = atax_cpu<T>(MatrixView<const T>(a.data(), n, m),
                                  VectorView<const T>(x.data(), m));
  const auto got = atax_streaming<T>(
      sim::stratix10(), Mode::Functional, 4, tile,
      atax_min_channel_depth(m, tile, 4), MatrixView<const T>(a.data(), n, m),
      VectorView<const T>(x.data(), m));
  EXPECT_LT(rel_error(got.y, expect), 1e-3);
}

TYPED_TEST(Apps, AtaxUndersizedChannelDeadlocks) {
  using T = TypeParam;
  Workload wl(708);
  const std::int64_t n = 40, m = 24, tile = 8;
  auto a = wl.matrix<T>(n, m);
  auto x = wl.vector<T>(m);
  // A channel much smaller than a row of tiles: the composition stalls
  // forever, exactly as the Sec. V-B analysis predicts.
  EXPECT_THROW(atax_streaming<T>(sim::stratix10(), Mode::Functional, 4, tile,
                                 /*a_channel_depth=*/tile,
                                 MatrixView<const T>(a.data(), n, m),
                                 VectorView<const T>(x.data(), m)),
               DeadlockError);
}

TYPED_TEST(Apps, AtaxSplitMatchesCpu) {
  using T = TypeParam;
  Workload wl(709);
  const std::int64_t n = 32, m = 20, tile = 8;
  auto a = wl.matrix<T>(n, m);
  auto x = wl.vector<T>(m);
  const auto expect = atax_cpu<T>(MatrixView<const T>(a.data(), n, m),
                                  VectorView<const T>(x.data(), m));
  const auto got =
      atax_split<T>(sim::stratix10(), Mode::Functional, 4, tile,
                    MatrixView<const T>(a.data(), n, m),
                    VectorView<const T>(x.data(), m));
  EXPECT_LT(rel_error(got.y, expect), 1e-3);
  host::Device dev;
  host::Context ctx(dev);
  ctx.config().width = 4;
  ctx.config().tile_rows = tile;
  ctx.config().tile_cols = tile;
  const auto host = atax_host_layer<T>(ctx, MatrixView<const T>(a.data(), n, m),
                                       VectorView<const T>(x.data(), m));
  EXPECT_LT(rel_error(host.y, expect), 1e-3);
}

TYPED_TEST(Apps, AtaxAutoPlannedMatchesCpuBothWays) {
  using T = TypeParam;
  Workload wl(715);
  const std::int64_t n = 40, m = 24, tile = 8;
  auto a = wl.matrix<T>(n, m);
  auto x = wl.vector<T>(m);
  const auto expect = atax_cpu<T>(MatrixView<const T>(a.data(), n, m),
                                  VectorView<const T>(x.data(), m));
  // Generous on-chip budget: the planner sizes the channel and streams.
  const auto streamed = atax_auto<T>(
      sim::stratix10(), Mode::Functional, 4, tile,
      /*max_channel_depth=*/1 << 16, MatrixView<const T>(a.data(), n, m),
      VectorView<const T>(x.data(), m));
  EXPECT_LT(rel_error(streamed.y, expect), 1e-3);
  // Tiny budget: the planner falls back to the split schedule.
  const auto split = atax_auto<T>(
      sim::stratix10(), Mode::Functional, 4, tile,
      /*max_channel_depth=*/16, MatrixView<const T>(a.data(), n, m),
      VectorView<const T>(x.data(), m));
  EXPECT_LT(rel_error(split.y, expect), 1e-3);
}

TYPED_TEST(Apps, GemverStreamingMatchesCpu) {
  using T = TypeParam;
  Workload wl(710);
  const std::int64_t n = 32, tile = 8;
  auto a = wl.matrix<T>(n, n);
  auto u1 = wl.vector<T>(n);
  auto v1 = wl.vector<T>(n);
  auto u2 = wl.vector<T>(n);
  auto v2 = wl.vector<T>(n);
  auto y = wl.vector<T>(n);
  auto z = wl.vector<T>(n);
  const T alpha = T(1.25), beta = T(0.75);
  auto cv = [n](const std::vector<T>& v) {
    return VectorView<const T>(v.data(), n);
  };
  const auto expect =
      gemver_cpu<T>(alpha, beta, MatrixView<const T>(a.data(), n, n), cv(u1),
                    cv(v1), cv(u2), cv(v2), cv(y), cv(z));
  const auto got = gemver_streaming<T>(
      sim::stratix10(), Mode::Functional, 4, tile, alpha, beta,
      MatrixView<const T>(a.data(), n, n), cv(u1), cv(v1), cv(u2), cv(v2),
      cv(y), cv(z));
  EXPECT_LT(rel_error(got.b, expect.b), 1e-3);
  EXPECT_LT(rel_error(got.x, expect.x), 1e-3);
  EXPECT_LT(rel_error(got.w, expect.w), 1e-3);
}

TYPED_TEST(Apps, GemverHostLayerMatchesCpu) {
  using T = TypeParam;
  Workload wl(711);
  const std::int64_t n = 24;
  auto a = wl.matrix<T>(n, n);
  auto u1 = wl.vector<T>(n);
  auto v1 = wl.vector<T>(n);
  auto u2 = wl.vector<T>(n);
  auto v2 = wl.vector<T>(n);
  auto y = wl.vector<T>(n);
  auto z = wl.vector<T>(n);
  auto cv = [n](const std::vector<T>& v) {
    return VectorView<const T>(v.data(), n);
  };
  host::Device dev;
  host::Context ctx(dev);
  ctx.config().width = 4;
  ctx.config().tile_rows = 8;
  ctx.config().tile_cols = 8;
  const auto expect =
      gemver_cpu<T>(T(2), T(0.5), MatrixView<const T>(a.data(), n, n), cv(u1),
                    cv(v1), cv(u2), cv(v2), cv(y), cv(z));
  const auto got = gemver_host_layer<T>(
      ctx, T(2), T(0.5), MatrixView<const T>(a.data(), n, n), cv(u1), cv(v1),
      cv(u2), cv(v2), cv(y), cv(z));
  EXPECT_LT(rel_error(got.b, expect.b), 1e-3);
  EXPECT_LT(rel_error(got.x, expect.x), 1e-3);
  EXPECT_LT(rel_error(got.w, expect.w), 1e-3);
}

TEST(AppsSpeedup, GemverStreamingBeatsHostLayer) {
  Workload wl(712);
  const std::int64_t n = 128, tile = 32;
  auto a = wl.matrix<float>(n, n);
  auto u1 = wl.vector<float>(n);
  auto v1 = wl.vector<float>(n);
  auto u2 = wl.vector<float>(n);
  auto v2 = wl.vector<float>(n);
  auto y = wl.vector<float>(n);
  auto z = wl.vector<float>(n);
  auto cv = [n](const std::vector<float>& v) {
    return VectorView<const float>(v.data(), n);
  };
  const auto streaming = gemver_streaming<float>(
      sim::stratix10(), stream::Mode::Cycle, 16, tile, 1.5f, 0.5f,
      MatrixView<const float>(a.data(), n, n), cv(u1), cv(v1), cv(u2), cv(v2),
      cv(y), cv(z));
  host::Device dev(sim::DeviceId::Stratix10);
  host::Context ctx(dev, stream::Mode::Cycle);
  ctx.config().width = 16;
  ctx.config().tile_rows = tile;
  ctx.config().tile_cols = tile;
  const auto host = gemver_host_layer<float>(
      ctx, 1.5f, 0.5f, MatrixView<const float>(a.data(), n, n), cv(u1),
      cv(v1), cv(u2), cv(v2), cv(y), cv(z));
  const double speedup = static_cast<double>(host.cycles) /
                         static_cast<double>(streaming.cycles);
  // Paper Fig. 11: GEMVER speedup ~2-3.
  EXPECT_GT(speedup, 1.6);
  EXPECT_LT(speedup, 5.0);
}

TYPED_TEST(Apps, GesummvStreamingMatchesCpu) {
  using T = TypeParam;
  Workload wl(716);
  const std::int64_t n = 36, m = 28, tile = 8;
  auto a = wl.matrix<T>(n, m);
  auto b = wl.matrix<T>(n, m);
  auto x = wl.vector<T>(m);
  const auto expect = gesummv_cpu<T>(
      T(1.5), T(-0.5), MatrixView<const T>(a.data(), n, m),
      MatrixView<const T>(b.data(), n, m), VectorView<const T>(x.data(), m));
  const auto got = gesummv_streaming<T>(
      sim::stratix10(), Mode::Functional, 4, tile, T(1.5), T(-0.5),
      MatrixView<const T>(a.data(), n, m), MatrixView<const T>(b.data(), n, m),
      VectorView<const T>(x.data(), m));
  EXPECT_LT(rel_error(got.y, expect), 1e-3);
}

TYPED_TEST(Apps, GesummvHostLayerMatchesCpu) {
  using T = TypeParam;
  Workload wl(717);
  const std::int64_t n = 24, m = 20;
  auto a = wl.matrix<T>(n, m);
  auto b = wl.matrix<T>(n, m);
  auto x = wl.vector<T>(m);
  host::Device dev;
  host::Context ctx(dev);
  ctx.config().width = 4;
  ctx.config().tile_rows = 8;
  ctx.config().tile_cols = 8;
  const auto got = gesummv_host_layer<T>(
      ctx, T(2), T(0.5), MatrixView<const T>(a.data(), n, m),
      MatrixView<const T>(b.data(), n, m), VectorView<const T>(x.data(), m));
  const auto expect = gesummv_cpu<T>(
      T(2), T(0.5), MatrixView<const T>(a.data(), n, m),
      MatrixView<const T>(b.data(), n, m), VectorView<const T>(x.data(), m));
  EXPECT_LT(rel_error(got.y, expect), 1e-3);
}

TEST(AppsSpeedup, GesummvStreamingBeatsHostLayer) {
  // Both matrices stream once each, x is broadcast, and the three modules
  // (2 GEMVs + ADD) overlap — the host layer pays an extra intermediate
  // round trip and runs the calls back to back.
  Workload wl(718);
  const std::int64_t n = 256, tile = 64;
  auto a = wl.matrix<float>(n, n);
  auto b = wl.matrix<float>(n, n);
  auto x = wl.vector<float>(n);
  const auto streaming = gesummv_streaming<float>(
      sim::stratix10(), Mode::Cycle, 16, tile, 1.5f, 0.5f,
      MatrixView<const float>(a.data(), n, n),
      MatrixView<const float>(b.data(), n, n),
      VectorView<const float>(x.data(), n));
  host::Device dev(sim::DeviceId::Stratix10);
  host::Context ctx(dev, Mode::Cycle);
  ctx.config().width = 16;
  ctx.config().tile_rows = tile;
  ctx.config().tile_cols = tile;
  const auto host = gesummv_host_layer<float>(
      ctx, 1.5f, 0.5f, MatrixView<const float>(a.data(), n, n),
      MatrixView<const float>(b.data(), n, n),
      VectorView<const float>(x.data(), n));
  EXPECT_LT(rel_error(host.y, streaming.y), 1e-3);
  const double speedup = static_cast<double>(host.cycles) /
                         static_cast<double>(streaming.cycles);
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 3.5);
}

TEST(AppMdags, GesummvShowsTheAnalysisIsConservative) {
  // GESUMMV is a non-multitree (x reaches the ADD through both GEMVs, and
  // so the Sec. V rule flags it), yet the streaming runs above complete
  // with small channels: the two sibling paths have *identical* lag (both
  // GEMVs emit block ti after the same tile-row), so neither side ever
  // builds up unbounded backlog. The vertex-disjoint-path criterion is
  // sufficient-for-danger, not necessary — the paper's "invalid graphs
  // CAN occur" phrasing, made precise.
  const auto g = gesummv_mdag(1024, 1024, 64);
  EXPECT_FALSE(mdag::is_multitree(g));
  EXPECT_FALSE(mdag::validate(g).valid);  // the conservative verdict
  // The planner still produces a safe plan (sized channels or a split).
  mdag::PlanOptions opt;
  opt.max_channel_depth = 1 << 20;
  const auto plan = mdag::derive_plan(g, opt);
  EXPECT_TRUE(plan.feasible);
}

// ---- MDAG cross-checks --------------------------------------------------

TEST(AppMdags, ValidityMatchesPaper) {
  EXPECT_TRUE(mdag::validate(axpydot_mdag(1024)).valid);
  EXPECT_TRUE(mdag::validate(bicg_mdag(1024, 512, 64)).valid);
  EXPECT_FALSE(mdag::validate(atax_mdag(1024, 1024, 64)).valid);
  EXPECT_FALSE(mdag::validate(gemver_mdag(1024, 64)).valid);
}

TEST(AppMdags, IoVolumesMatchSec5) {
  const std::int64_t n = 1024;
  EXPECT_EQ(mdag::total_io_ops(axpydot_mdag(n)), 3 * n + 1);
  // BICG: A once + replayed p + r + q + s.
  const auto bicg = bicg_mdag(n, n, 64);
  EXPECT_EQ(mdag::total_io_ops(bicg), n * n + n * (n / 64) + 3 * n);
}

}  // namespace
}  // namespace fblas::apps
