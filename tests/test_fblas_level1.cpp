// Streaming Level-1 modules tested against the reference BLAS oracle,
// across widths, sizes, and both execution modes.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/workload.hpp"
#include "fblas/level1.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas::core {
namespace {

using stream::Graph;
using stream::Mode;

template <typename T>
struct L1Harness {
  Mode mode = Mode::Functional;
  std::uint64_t cycles = 0;

  // Runs a one-in/one-out module builder: builder(g, ch_in, ch_out).
  template <typename Builder>
  std::vector<T> map1(const std::vector<T>& x, Builder&& builder) {
    Graph g(mode);
    auto& in = g.channel<T>("x", 64);
    auto& out = g.channel<T>("out", 64);
    std::vector<T> result;
    g.spawn("feed", stream::feed(x, in));
    builder(g, in, out);
    g.spawn("collect", stream::collect<T>(
                           static_cast<std::int64_t>(x.size()), out, result));
    g.run();
    cycles = g.cycles();
    return result;
  }

  // Runs a two-in/one-out elementwise module builder.
  template <typename Builder>
  std::vector<T> map2(const std::vector<T>& x, const std::vector<T>& y,
                      Builder&& builder) {
    Graph g(mode);
    auto& cx = g.channel<T>("x", 64);
    auto& cy = g.channel<T>("y", 64);
    auto& out = g.channel<T>("out", 64);
    std::vector<T> result;
    g.spawn("feed_x", stream::feed(x, cx));
    g.spawn("feed_y", stream::feed(y, cy));
    builder(g, cx, cy, out);
    g.spawn("collect", stream::collect<T>(
                           static_cast<std::int64_t>(x.size()), out, result));
    g.run();
    cycles = g.cycles();
    return result;
  }

  // Runs a two-in/scalar-out reduction module builder.
  template <typename Builder>
  T reduce2(const std::vector<T>& x, const std::vector<T>& y,
            Builder&& builder) {
    Graph g(mode);
    auto& cx = g.channel<T>("x", 64);
    auto& cy = g.channel<T>("y", 64);
    auto& res = g.channel<T>("res", 2);
    std::vector<T> result;
    g.spawn("feed_x", stream::feed(x, cx));
    g.spawn("feed_y", stream::feed(y, cy));
    builder(g, cx, cy, res);
    g.spawn("collect", stream::collect<T>(1, res, result));
    g.run();
    cycles = g.cycles();
    return result.at(0);
  }
};

template <typename T>
class StreamLevel1 : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(StreamLevel1, Precisions);

TYPED_TEST(StreamLevel1, ScalMatchesOracleAcrossWidths) {
  using T = TypeParam;
  Workload wl(101);
  for (std::int64_t n : {1, 7, 64, 257}) {
    auto x = wl.vector<T>(n);
    for (int w : {1, 4, 16, 64}) {
      L1Harness<T> h;
      auto got = h.map1(x, [&](Graph& g, Channel<T>& in, Channel<T>& out) {
        g.spawn("scal", scal<T>({w}, n, T(2.5), in, out));
      });
      auto expect = x;
      ref::scal<T>(T(2.5), VectorView<T>(expect.data(), n));
      EXPECT_EQ(got, expect) << "n=" << n << " w=" << w;
    }
  }
}

TYPED_TEST(StreamLevel1, CopyIsIdentity) {
  using T = TypeParam;
  Workload wl(102);
  auto x = wl.vector<T>(100);
  L1Harness<T> h;
  auto got = h.map1(x, [&](Graph& g, Channel<T>& in, Channel<T>& out) {
    g.spawn("copy", copy<T>({8}, 100, in, out));
  });
  EXPECT_EQ(got, x);
}

TYPED_TEST(StreamLevel1, AxpyMatchesOracle) {
  using T = TypeParam;
  Workload wl(103);
  const std::int64_t n = 129;
  auto x = wl.vector<T>(n);
  auto y = wl.vector<T>(n);
  L1Harness<T> h;
  auto got = h.map2(
      x, y, [&](Graph& g, Channel<T>& cx, Channel<T>& cy, Channel<T>& out) {
        g.spawn("axpy", axpy<T>({16}, n, T(-1.5), cx, cy, out));
      });
  auto expect = y;
  ref::axpy<T>(T(-1.5), VectorView<const T>(x.data(), n),
               VectorView<T>(expect.data(), n));
  EXPECT_EQ(got, expect);
}

TYPED_TEST(StreamLevel1, SwapExchangesStreams) {
  using T = TypeParam;
  Workload wl(104);
  const std::int64_t n = 33;
  auto x = wl.vector<T>(n);
  auto y = wl.vector<T>(n);
  Graph g;
  auto& cx = g.channel<T>("x", 16);
  auto& cy = g.channel<T>("y", 16);
  auto& ox = g.channel<T>("ox", 16);
  auto& oy = g.channel<T>("oy", 16);
  std::vector<T> rx, ry;
  g.spawn("fx", stream::feed(x, cx));
  g.spawn("fy", stream::feed(y, cy));
  g.spawn("swap", swap<T>({8}, n, cx, cy, ox, oy));
  g.spawn("cx", stream::collect<T>(n, ox, rx));
  g.spawn("cy", stream::collect<T>(n, oy, ry));
  g.run();
  EXPECT_EQ(rx, y);
  EXPECT_EQ(ry, x);
}

TYPED_TEST(StreamLevel1, RotMatchesOracle) {
  using T = TypeParam;
  Workload wl(105);
  const std::int64_t n = 65;
  auto x = wl.vector<T>(n);
  auto y = wl.vector<T>(n);
  const T c = T(0.6), s = T(0.8);
  Graph g;
  auto& cx = g.channel<T>("x", 16);
  auto& cy = g.channel<T>("y", 16);
  auto& ox = g.channel<T>("ox", 16);
  auto& oy = g.channel<T>("oy", 16);
  std::vector<T> rx, ry;
  g.spawn("fx", stream::feed(x, cx));
  g.spawn("fy", stream::feed(y, cy));
  g.spawn("rot", rot<T>({8}, n, c, s, cx, cy, ox, oy));
  g.spawn("cx", stream::collect<T>(n, ox, rx));
  g.spawn("cy", stream::collect<T>(n, oy, ry));
  g.run();
  auto ex = x, ey = y;
  ref::rot<T>(VectorView<T>(ex.data(), n), VectorView<T>(ey.data(), n), c, s);
  EXPECT_EQ(rx, ex);
  EXPECT_EQ(ry, ey);
}

TYPED_TEST(StreamLevel1, RotmMatchesOracleAllFlags) {
  using T = TypeParam;
  Workload wl(106);
  const std::int64_t n = 40;
  const std::vector<ref::RotmParam<T>> params = {
      {T(-2), 0, 0, 0, 0},
      {T(-1), T(0.5), T(-0.25), T(0.75), T(1.25)},
      {T(0), 0, T(-0.5), T(0.5), 0},
      {T(1), T(0.25), 0, 0, T(0.5)},
  };
  for (const auto& p : params) {
    auto x = wl.vector<T>(n);
    auto y = wl.vector<T>(n);
    Graph g;
    auto& cx = g.channel<T>("x", 16);
    auto& cy = g.channel<T>("y", 16);
    auto& ox = g.channel<T>("ox", 16);
    auto& oy = g.channel<T>("oy", 16);
    std::vector<T> rx, ry;
    g.spawn("fx", stream::feed(x, cx));
    g.spawn("fy", stream::feed(y, cy));
    g.spawn("rotm", rotm<T>({8}, n, p, cx, cy, ox, oy));
    g.spawn("cx", stream::collect<T>(n, ox, rx));
    g.spawn("cy", stream::collect<T>(n, oy, ry));
    g.run();
    auto ex = x, ey = y;
    ref::rotm<T>(VectorView<T>(ex.data(), n), VectorView<T>(ey.data(), n), p);
    EXPECT_EQ(rx, ex) << "flag=" << p.flag;
    EXPECT_EQ(ry, ey) << "flag=" << p.flag;
  }
}

TYPED_TEST(StreamLevel1, RotgModule) {
  using T = TypeParam;
  Graph g;
  auto& in = g.channel<T>("in", 4);
  auto& out = g.channel<T>("out", 8);
  std::vector<T> result;
  g.spawn("feed", stream::feed(std::vector<T>{T(3), T(4)}, in));
  g.spawn("rotg", rotg<T>(in, out));
  g.spawn("collect", stream::collect<T>(4, out, result));
  g.run();
  // r = 5 (sign of larger-magnitude operand b), c = 3/5, s = 4/5.
  EXPECT_NEAR(std::abs(result[0]), 5.0, 1e-5);
  EXPECT_NEAR(result[2] * result[2] + result[3] * result[3], 1.0, 1e-6);
}

TYPED_TEST(StreamLevel1, RotmgModuleMatchesOracle) {
  using T = TypeParam;
  T d1 = T(1.5), d2 = T(0.5), x1 = T(2), y1 = T(1);
  T rd1 = d1, rd2 = d2, rx1 = x1;
  const auto expect = ref::rotmg<T>(rd1, rd2, rx1, y1);
  Graph g;
  auto& in = g.channel<T>("in", 4);
  auto& out = g.channel<T>("out", 8);
  std::vector<T> result;
  g.spawn("feed", stream::feed(std::vector<T>{d1, d2, x1, y1}, in));
  g.spawn("rotmg", rotmg<T>(in, out));
  g.spawn("collect", stream::collect<T>(8, out, result));
  g.run();
  EXPECT_EQ(result[0], expect.flag);
  EXPECT_EQ(result[1], expect.h11);
  EXPECT_EQ(result[5], rd1);
  EXPECT_EQ(result[7], rx1);
}

TYPED_TEST(StreamLevel1, DotMatchesOracleAcrossWidthsAndSizes) {
  using T = TypeParam;
  Workload wl(107);
  for (std::int64_t n : {1, 16, 100, 513}) {
    auto x = wl.vector<T>(n);
    auto y = wl.vector<T>(n);
    const T expect = ref::dot<T>(VectorView<const T>(x.data(), n),
                                 VectorView<const T>(y.data(), n));
    for (int w : {1, 8, 32}) {
      L1Harness<T> h;
      const T got = h.reduce2(
          x, y, [&](Graph& g, Channel<T>& cx, Channel<T>& cy, Channel<T>& r) {
            g.spawn("dot", dot<T>({w}, n, cx, cy, r));
          });
      EXPECT_NEAR(got, expect, 1e-4 * n) << "n=" << n << " w=" << w;
    }
  }
}

TEST(StreamLevel1Sdsdot, DoubleAccumulation) {
  std::vector<float> x{1e8f, 1.0f}, y{1.0f, 1.0f};
  Graph g;
  auto& cx = g.channel<float>("x", 4);
  auto& cy = g.channel<float>("y", 4);
  auto& res = g.channel<float>("r", 2);
  std::vector<float> out;
  g.spawn("fx", stream::feed(x, cx));
  g.spawn("fy", stream::feed(y, cy));
  g.spawn("sdsdot", sdsdot({4}, 2, 1.0f, cx, cy, res));
  g.spawn("collect", stream::collect<float>(1, res, out));
  g.run();
  EXPECT_FLOAT_EQ(out[0], static_cast<float>(1e8 + 2.0));
}

TYPED_TEST(StreamLevel1, Nrm2AndAsum) {
  using T = TypeParam;
  Workload wl(108);
  const std::int64_t n = 201;
  auto x = wl.vector<T>(n);
  Graph g;
  auto& c1 = g.channel<T>("x1", 32);
  auto& c2 = g.channel<T>("x2", 32);
  auto& r1 = g.channel<T>("r1", 2);
  auto& r2 = g.channel<T>("r2", 2);
  std::vector<T> o1, o2;
  g.spawn("f1", stream::feed(x, c1));
  g.spawn("f2", stream::feed(x, c2));
  g.spawn("nrm2", nrm2<T>({16}, n, c1, r1));
  g.spawn("asum", asum<T>({16}, n, c2, r2));
  g.spawn("c1", stream::collect<T>(1, r1, o1));
  g.spawn("c2", stream::collect<T>(1, r2, o2));
  g.run();
  EXPECT_NEAR(o1[0], ref::nrm2<T>(VectorView<const T>(x.data(), n)), 1e-3);
  EXPECT_NEAR(o2[0], ref::asum<T>(VectorView<const T>(x.data(), n)), 1e-3);
}

TYPED_TEST(StreamLevel1, IamaxMatchesOracle) {
  using T = TypeParam;
  Workload wl(109);
  const std::int64_t n = 77;
  auto x = wl.vector<T>(n);
  x[31] = T(9);  // make the winner unambiguous
  Graph g;
  auto& cx = g.channel<T>("x", 16);
  auto& res = g.channel<std::int64_t>("r", 2);
  std::vector<std::int64_t> out;
  g.spawn("feed", stream::feed(x, cx));
  g.spawn("iamax", iamax<T>({8}, n, cx, res));
  g.spawn("collect", stream::collect<std::int64_t>(1, res, out));
  g.run();
  EXPECT_EQ(out[0], 31);
}

TYPED_TEST(StreamLevel1, CycleModeMatchesFunctionalAndScalesWithWidth) {
  using T = TypeParam;
  Workload wl(110);
  const std::int64_t n = 4096;
  auto x = wl.vector<T>(n);
  auto y = wl.vector<T>(n);
  std::uint64_t cyc_w8 = 0, cyc_w32 = 0;
  T val8{}, val32{};
  for (auto [w, cyc, val] :
       {std::tuple<int, std::uint64_t*, T*>{8, &cyc_w8, &val8},
        std::tuple<int, std::uint64_t*, T*>{32, &cyc_w32, &val32}}) {
    L1Harness<T> h;
    h.mode = Mode::Cycle;
    *val = h.reduce2(
        x, y, [&](Graph& g, Channel<T>& cx, Channel<T>& cy, Channel<T>& r) {
          g.spawn("dot", dot<T>({w}, n, cx, cy, r));
        });
    *cyc = h.cycles;
  }
  // Different widths group the accumulation differently; results agree up
  // to rounding.
  EXPECT_NEAR(val8, val32, 1e-3);
  // C = CD + N/W: quadrupling W divides the cycle count by ~4.
  EXPECT_NEAR(static_cast<double>(cyc_w8) / static_cast<double>(cyc_w32), 4.0,
              0.8);
}

TYPED_TEST(StreamLevel1, ZeroLengthStreams) {
  using T = TypeParam;
  Graph g;
  auto& cx = g.channel<T>("x", 4);
  auto& cy = g.channel<T>("y", 4);
  auto& res = g.channel<T>("r", 2);
  std::vector<T> out;
  g.spawn("dot", dot<T>({8}, 0, cx, cy, res));
  g.spawn("collect", stream::collect<T>(1, res, out));
  g.run();
  EXPECT_EQ(out[0], T(0));
}

TYPED_TEST(StreamLevel1, RejectsInvalidWidth) {
  using T = TypeParam;
  Graph g;
  auto& cx = g.channel<T>("x", 4);
  auto& out = g.channel<T>("o", 4);
  g.spawn("scal", scal<T>({0}, 4, T(1), cx, out));
  EXPECT_THROW(g.run(), ConfigError);
}

}  // namespace
}  // namespace fblas::core
