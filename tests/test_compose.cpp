// The generic MDAG composition compiler, end to end: descriptions are
// rejected at enqueue with the validity diagnostic, the compiled
// AXPYDOT/ATAX/BICG pipelines are bit-identical to the hand-wired
// streaming graphs they replaced, the new composed GEMVER/GESUMMV match
// refblas (serially and on the worker pool), and in-flight corruption is
// caught on every compiled composition (sdc_caught == faults_injected)
// with the divergence localized to the injector's ground-truth channel.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "apps/atax.hpp"
#include "apps/axpydot.hpp"
#include "apps/bicg.hpp"
#include "apps/gemver.hpp"
#include "apps/gesummv.hpp"
#include "common/error.hpp"
#include "common/workload.hpp"
#include "fblas/level2.hpp"
#include "host/buffer.hpp"
#include "host/composition.hpp"
#include "host/context.hpp"
#include "verify/options.hpp"

namespace fblas {
namespace {

host::RetryPolicy fast_retry(int max_retries, bool cpu_fallback = false) {
  host::RetryPolicy p;
  p.max_retries = max_retries;
  p.backoff = std::chrono::microseconds(0);
  p.cpu_fallback = cpu_fallback;
  return p;
}

template <typename T>
void expect_close(const std::vector<T>& got, const std::vector<T>& want,
                  double tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(got[i]), static_cast<double>(want[i]),
                tol)
        << "at index " << i;
  }
}

// --- Rejection at enqueue -------------------------------------------------

TEST(ComposeCompiler, NonMultitreeRejectionSurfacesValidityDiagnostic) {
  // The ATAX shape (two vertex-disjoint A-paths into the transposed GEMV)
  // with a channel budget too small to buffer a row of tiles and
  // require_streaming(): the compiler must refuse the description at the
  // run_composition_async call itself — no command enqueued, no Event —
  // and explain *why* with the multitree analysis.
  const std::int64_t n = 24, m = 16;
  Workload wl(41);
  host::Device dev;
  host::Context ctx(dev);
  host::Buffer<float> a(dev, n * m, 0), x(dev, m, 1), y(dev, m, 2);
  a.write(wl.matrix<float>(n, m));
  x.write(wl.vector<float>(m));
  y.write(std::vector<float>(static_cast<std::size_t>(m), 0.0f));

  const host::RoutineConfig& rc = ctx.config();
  const core::GemvConfig cfg{Transpose::None,
                             core::MatrixTiling::TilesByRows, rc.width,
                             rc.tile_rows, rc.tile_rows};
  host::Composition<float> c("atax_strict");
  c.require_streaming().max_channel_depth(16);
  const int ra = c.input("read_A", a);
  const int rx = c.input("read_x", x);
  const int wy = c.output("store_y", y);
  const int g1 = c.gemv("gemv", 1.0f, 0.0f);
  const int g2 = c.gemv("gemv_T", 1.0f, 0.0f, Transpose::Trans);
  const auto a_sig = mdag::StreamSig::mat(n, m, core::gemv_a_schedule(cfg));
  c.connect(ra, g1, a_sig);
  c.connect(ra, g2, a_sig);
  c.connect(rx, g1,
            mdag::StreamSig::vec(m, core::gemv_x_repeat(cfg, n, m)));
  c.connect(g1, g2, mdag::StreamSig::vec(n));
  c.connect(g2, wy, mdag::StreamSig::vec(m));

  try {
    ctx.run_composition_async(c);
    FAIL() << "expected ConfigError at enqueue";
  } catch (const ConfigError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("single streaming component"), std::string::npos);
    EXPECT_NE(msg.find("vertex-disjoint"), std::string::npos);
  }
  // Nothing ran, nothing landed.
  ctx.finish();
  EXPECT_EQ(ctx.exec_stats().executed, 0u);

  // The same description with the budget restored streams fine.
  c.max_channel_depth(1 << 16);
  EXPECT_NO_THROW(ctx.run_composition(c));
}

// --- Bit-identity with the hand-wired streaming graphs --------------------

TEST(ComposeCompiler, CompiledAxpydotBitIdenticalToHandWired) {
  const std::int64_t n = 300;
  const float alpha = 0.37f;
  Workload wl(42);
  const auto hw = wl.vector<float>(n);
  const auto hv = wl.vector<float>(n);
  const auto hu = wl.vector<float>(n);

  host::Device dev;
  host::Context ctx(dev, stream::Mode::Functional, 0);
  host::Buffer<float> w(dev, n, 0), v(dev, n, 1), u(dev, n, 2);
  w.write(hw);
  v.write(hv);
  u.write(hu);
  const float beta = apps::axpydot_composed<float>(ctx, n, w, v, u, alpha);

  const auto hand = apps::axpydot_streaming<float>(
      dev.spec(), stream::Mode::Functional, ctx.config().width,
      VectorView<const float>(hw.data(), n),
      VectorView<const float>(hv.data(), n),
      VectorView<const float>(hu.data(), n), alpha);
  EXPECT_EQ(beta, hand.beta);  // bit-identical, not just close
}

TEST(ComposeCompiler, CompiledAtaxBitIdenticalToHandWired) {
  const std::int64_t n = 40, m = 28;
  Workload wl(43);
  const auto ha = wl.matrix<float>(n, m);
  const auto hx = wl.vector<float>(m);

  host::Device dev;
  host::Context ctx(dev, stream::Mode::Functional, 0);
  host::Buffer<float> a(dev, n * m, 0), x(dev, m, 1), y(dev, m, 2);
  a.write(ha);
  x.write(hx);
  y.write(std::vector<float>(static_cast<std::size_t>(m), 0.0f));
  apps::atax_composed<float>(ctx, n, m, a, x, y);

  const auto& rc = ctx.config();
  const auto hand = apps::atax_streaming<float>(
      dev.spec(), stream::Mode::Functional, rc.width, rc.tile_rows,
      apps::atax_min_channel_depth(m, rc.tile_rows, rc.width),
      MatrixView<const float>(ha.data(), n, m),
      VectorView<const float>(hx.data(), m));
  EXPECT_EQ(y.to_host(), hand.y);
}

TEST(ComposeCompiler, CompiledBicgBitIdenticalToHandWired) {
  const std::int64_t n = 36, m = 24;
  Workload wl(44);
  const auto ha = wl.matrix<float>(n, m);
  const auto hp = wl.vector<float>(m);
  const auto hr = wl.vector<float>(n);

  host::Device dev;
  host::Context ctx(dev, stream::Mode::Functional, 0);
  host::Buffer<float> a(dev, n * m, 0), p(dev, m, 1), r(dev, n, 2);
  host::Buffer<float> q(dev, n, 1), s(dev, m, 2);
  a.write(ha);
  p.write(hp);
  r.write(hr);
  q.write(std::vector<float>(static_cast<std::size_t>(n), 0.0f));
  s.write(std::vector<float>(static_cast<std::size_t>(m), 0.0f));
  apps::bicg_composed<float>(ctx, n, m, a, p, r, q, s);

  const auto& rc = ctx.config();
  const auto hand = apps::bicg_streaming<float>(
      dev.spec(), stream::Mode::Functional, rc.width, rc.tile_rows,
      MatrixView<const float>(ha.data(), n, m),
      VectorView<const float>(hp.data(), m),
      VectorView<const float>(hr.data(), n));
  EXPECT_EQ(q.to_host(), hand.q);
  EXPECT_EQ(s.to_host(), hand.s);
}

// --- Composed GEMVER / GESUMMV against refblas ---------------------------

// Runs both new compositions `rounds` times (alternating, to interleave
// on the pool) and returns every output buffer.
std::tuple<std::vector<std::vector<float>>, host::ExecStats>
run_gemver_gesummv(int workers, bool with_faults, bool verified = true) {
  const std::int64_t n = 24, m = 20;
  const float alpha = 0.6f, beta = -0.8f;
  Workload wl(45);
  host::Device dev;
  host::Context ctx(dev, stream::Mode::Functional, workers);
  if (with_faults) {
    host::FaultConfig fc;
    fc.seed = 51;
    fc.channel_corrupt_rate = 0.4;
    fc.max_faults = 4;
    dev.inject_faults(fc);
  }
  ctx.set_retry_policy(fast_retry(4));
  if (verified) ctx.config().verification = verify::Options::always();

  host::Buffer<float> A(dev, n * n, 0);
  host::Buffer<float> u1(dev, n, 1), v1(dev, n, 2), u2(dev, n, 1),
      v2(dev, n, 2), yy(dev, n, 1), zz(dev, n, 2);
  host::Buffer<float> B(dev, n * n, 1), X(dev, n, 2), W(dev, n, 1);
  A.write(wl.matrix<float>(n, n));
  u1.write(wl.vector<float>(n));
  v1.write(wl.vector<float>(n));
  u2.write(wl.vector<float>(n));
  v2.write(wl.vector<float>(n));
  yy.write(wl.vector<float>(n));
  zz.write(wl.vector<float>(n));

  host::Buffer<float> GA(dev, n * m, 0), GB(dev, n * m, 1), gx(dev, m, 2),
      gy(dev, n, 1);
  GA.write(wl.matrix<float>(n, m));
  GB.write(wl.matrix<float>(n, m));
  gx.write(wl.vector<float>(m));

  // Outputs are zeroed once, up front: a host-side Buffer::write is not a
  // tracked command, so touching these buffers inside the loop would race
  // with the still-in-flight rounds on the worker pool. The commands'
  // own WAW hazards keep the rounds ordered.
  B.write(std::vector<float>(static_cast<std::size_t>(n * n), 0.0f));
  X.write(std::vector<float>(static_cast<std::size_t>(n), 0.0f));
  W.write(std::vector<float>(static_cast<std::size_t>(n), 0.0f));
  gy.write(std::vector<float>(static_cast<std::size_t>(n), 0.0f));
  for (int round = 0; round < 3; ++round) {
    apps::gemver_composed_async<float>(ctx, n, alpha, beta, A, u1, v1, u2,
                                       v2, yy, zz, B, X, W);
    apps::gesummv_composed_async<float>(ctx, n, m, alpha, beta, GA, GB, gx,
                                        gy);
  }
  ctx.finish();
  std::vector<std::vector<float>> out{B.to_host(), X.to_host(), W.to_host(),
                                      gy.to_host()};
  return {out, ctx.exec_stats()};
}

TEST(ComposeApps, GemverAndGesummvMatchRefblasSerially) {
  const auto [out, stats] = run_gemver_gesummv(0, false);
  EXPECT_EQ(stats.verify_failures, 0u);

  const std::int64_t n = 24, m = 20;
  const float alpha = 0.6f, beta = -0.8f;
  Workload wl(45);  // same seed => same operands as the device run
  const auto hA = wl.matrix<float>(n, n);
  const auto hu1 = wl.vector<float>(n);
  const auto hv1 = wl.vector<float>(n);
  const auto hu2 = wl.vector<float>(n);
  const auto hv2 = wl.vector<float>(n);
  const auto hy = wl.vector<float>(n);
  const auto hz = wl.vector<float>(n);
  const auto ref = apps::gemver_cpu<float>(
      alpha, beta, MatrixView<const float>(hA.data(), n, n),
      VectorView<const float>(hu1.data(), n),
      VectorView<const float>(hv1.data(), n),
      VectorView<const float>(hu2.data(), n),
      VectorView<const float>(hv2.data(), n),
      VectorView<const float>(hy.data(), n),
      VectorView<const float>(hz.data(), n));
  const double tol = 1e-3 * static_cast<double>(n);
  expect_close(out[0], ref.b, tol);
  expect_close(out[1], ref.x, tol);
  expect_close(out[2], ref.w, tol);

  const auto hGA = wl.matrix<float>(n, m);
  const auto hGB = wl.matrix<float>(n, m);
  const auto hgx = wl.vector<float>(m);
  const auto gref = apps::gesummv_cpu<float>(
      alpha, beta, MatrixView<const float>(hGA.data(), n, m),
      MatrixView<const float>(hGB.data(), n, m),
      VectorView<const float>(hgx.data(), m));
  expect_close(out[3], gref, tol);
}

TEST(ComposeApps, GemverAndGesummvIdenticalOnWorkerPool) {
  const auto [serial, serial_stats] = run_gemver_gesummv(0, false);
  const auto [pool, pool_stats] = run_gemver_gesummv(4, false);
  EXPECT_EQ(serial, pool);
  EXPECT_EQ(pool_stats.verify_failures, 0u);
  EXPECT_EQ(serial_stats.executed, pool_stats.executed);
}

// --- Fault injection across the compiled compositions ---------------------

TEST(ComposeFaults, EveryInjectedFaultCaughtAndRecoveredBitIdentical) {
  const auto [clean, clean_stats] = run_gemver_gesummv(0, false);
  const auto [faulted, fstats] = run_gemver_gesummv(0, true);
  EXPECT_GT(fstats.faults_injected, 0u);
  EXPECT_EQ(fstats.sdc_caught, fstats.faults_injected);
  EXPECT_EQ(clean, faulted);  // retries converge to the fault-free bits
  EXPECT_EQ(clean_stats.sdc_caught, 0u);

  const auto [pool, pstats] = run_gemver_gesummv(4, true);
  EXPECT_EQ(pstats.sdc_caught, pstats.faults_injected);
  EXPECT_EQ(clean, pool);
}

TEST(ComposeFaults, GemverCorruptionLocalizedToGroundTruthChannel) {
  // One corrupted FIFO element somewhere in the compiled two-component
  // GEMVER pipeline; the tap plan must name exactly the channel the
  // injector recorded as ground truth.
  const std::int64_t n = 20;
  Workload wl(46);
  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig fc;
  fc.seed = 52;
  fc.channel_corrupt_rate = 1.0;
  fc.max_faults = 1;
  dev.inject_faults(fc);
  ctx.set_retry_policy(fast_retry(0));
  ctx.config().verification = verify::Options::always();

  host::Buffer<float> A(dev, n * n, 0);
  host::Buffer<float> u1(dev, n, 1), v1(dev, n, 2), u2(dev, n, 1),
      v2(dev, n, 2), yy(dev, n, 1), zz(dev, n, 2);
  host::Buffer<float> B(dev, n * n, 1), X(dev, n, 2), W(dev, n, 1);
  A.write(wl.matrix<float>(n, n));
  u1.write(wl.vector<float>(n));
  v1.write(wl.vector<float>(n));
  u2.write(wl.vector<float>(n));
  v2.write(wl.vector<float>(n));
  yy.write(wl.vector<float>(n));
  zz.write(wl.vector<float>(n));
  B.write(std::vector<float>(static_cast<std::size_t>(n * n), 0.0f));
  X.write(std::vector<float>(static_cast<std::size_t>(n), 0.0f));
  W.write(std::vector<float>(static_cast<std::size_t>(n), 0.0f));

  host::Event e = apps::gemver_composed_async<float>(
      ctx, n, 0.5f, 1.5f, A, u1, v1, u2, v2, yy, zz, B, X, W);
  try {
    e.wait();
    FAIL() << "expected VerificationError";
  } catch (const VerificationError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("composition 'gemver'"), std::string::npos);
    EXPECT_NE(msg.find("first divergent edge"), std::string::npos);
    const std::string victim = dev.faults().last_victim();
    ASSERT_FALSE(victim.empty());
    EXPECT_NE(msg.find("edge '" + victim + "'"), std::string::npos);
  }
  EXPECT_EQ(ctx.exec_stats().faults_injected, 1u);
  EXPECT_EQ(ctx.exec_stats().sdc_caught, 1u);
}

TEST(ComposeFaults, GesummvCorruptionLocalizedToGroundTruthChannel) {
  const std::int64_t n = 24, m = 18;
  Workload wl(47);
  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig fc;
  fc.seed = 53;
  fc.channel_corrupt_rate = 1.0;
  fc.max_faults = 1;
  dev.inject_faults(fc);
  ctx.set_retry_policy(fast_retry(0));
  ctx.config().verification = verify::Options::always();

  host::Buffer<float> a(dev, n * m, 0), b(dev, n * m, 1), x(dev, m, 2),
      y(dev, n, 1);
  a.write(wl.matrix<float>(n, m));
  b.write(wl.matrix<float>(n, m));
  x.write(wl.vector<float>(m));
  y.write(std::vector<float>(static_cast<std::size_t>(n), 0.0f));

  host::Event e =
      apps::gesummv_composed_async<float>(ctx, n, m, 0.7f, 0.2f, a, b, x, y);
  try {
    e.wait();
    FAIL() << "expected VerificationError";
  } catch (const VerificationError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("composition 'gesummv'"), std::string::npos);
    const std::string victim = dev.faults().last_victim();
    ASSERT_FALSE(victim.empty());
    EXPECT_NE(msg.find("edge '" + victim + "'"), std::string::npos);
  }
  EXPECT_EQ(ctx.exec_stats().sdc_caught, 1u);
}

// --- Degradation: the synthesized refblas fallback ------------------------

TEST(ComposeFaults, PersistentCorruptionDegradesToSynthesizedCpuFallback) {
  // Unlimited corruption exhausts the retry budget; the command must
  // complete through the compiler's topologically-synthesized refblas
  // replay and still produce the exact refblas result. Sizes chosen so
  // every attempt streams well past the injector's deepest strike point
  // (the k-th pushed value, k <= 1024) — no attempt can escape clean.
  const std::int64_t n = 32, m = 24;
  const float alpha = 1.1f, beta = -0.4f;
  Workload wl(48);
  const auto ha = wl.matrix<float>(n, m);
  const auto hb = wl.matrix<float>(n, m);
  const auto hx = wl.vector<float>(m);

  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig fc;
  fc.seed = 54;
  fc.channel_corrupt_rate = 1.0;  // every attempt corrupted
  dev.inject_faults(fc);
  ctx.set_retry_policy(fast_retry(2, /*cpu_fallback=*/true));
  ctx.config().verification = verify::Options::always();

  host::Buffer<float> a(dev, n * m, 0), b(dev, n * m, 1), x(dev, m, 2),
      y(dev, n, 1);
  a.write(ha);
  b.write(hb);
  x.write(hx);
  y.write(std::vector<float>(static_cast<std::size_t>(n), 0.0f));
  apps::gesummv_composed<float>(ctx, n, m, alpha, beta, a, b, x, y);

  EXPECT_EQ(ctx.exec_stats().degraded, 1u);
  EXPECT_EQ(ctx.exec_stats().retries, 2u);
  const auto ref = apps::gesummv_cpu<float>(
      alpha, beta, MatrixView<const float>(ha.data(), n, m),
      MatrixView<const float>(hb.data(), n, m),
      VectorView<const float>(hx.data(), m));
  EXPECT_EQ(y.to_host(), ref);  // fallback IS refblas, bit for bit
}

}  // namespace
}  // namespace fblas
