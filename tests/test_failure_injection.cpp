// Failure injection: wrong element counts, starved channels, throttled
// banks, exceptions thrown mid-pipeline, misused buffers. The simulator
// must fail loudly and precisely (the right exception, the right module
// named) — silent wrong answers or hangs would invalidate every other
// experiment built on it.
#include <gtest/gtest.h>

#include <chrono>

#include "common/workload.hpp"
#include "fblas/level1.hpp"
#include "fblas/level2.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "refblas/level2.hpp"
#include "refblas/level3.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas {
namespace {

using stream::Graph;
using stream::Mode;

TEST(FailureInjection, ProducerShortfallNamesTheStarvedModule) {
  // The DOT module expects 100 elements; the feeders provide 90.
  Graph g;
  auto& cx = g.channel<float>("x", 16);
  auto& cy = g.channel<float>("y", 16);
  auto& res = g.channel<float>("res", 2);
  std::vector<float> out;
  Workload wl(1);
  g.spawn("feed_x", stream::feed(wl.vector<float>(90), cx));
  g.spawn("feed_y", stream::feed(wl.vector<float>(100), cy));
  g.spawn("dot", core::dot<float>({8}, 100, cx, cy, res));
  g.spawn("collect", stream::collect<float>(1, res, out));
  try {
    g.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'dot'"), std::string::npos);
    EXPECT_NE(msg.find("popping"), std::string::npos);
    EXPECT_NE(msg.find("'x'"), std::string::npos);
  }
}

TEST(FailureInjection, ConsumerShortfallNamesTheBlockedProducer) {
  // The collector wants fewer elements than produced: the producer ends
  // up blocked pushing into a full channel.
  Graph g;
  auto& ch = g.channel<float>("out", 4);
  std::vector<float> out;
  Workload wl(2);
  g.spawn("feed", stream::feed(wl.vector<float>(100), ch));
  g.spawn("collect", stream::collect<float>(10, ch, out));
  try {
    g.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'feed'"), std::string::npos);
    EXPECT_NE(msg.find("pushing"), std::string::npos);
  }
}

TEST(FailureInjection, WrongGemvReplayCountDeadlocks) {
  // Feeding x without the required replay starves the tiled GEMV —
  // exactly the condition (1) violation of Sec. V.
  Workload wl(3);
  const std::int64_t n = 16;
  auto a = wl.matrix<float>(n, n);
  auto x = wl.vector<float>(n);
  auto y = wl.vector<float>(n);
  core::GemvConfig cfg{Transpose::None, core::MatrixTiling::TilesByRows, 4,
                       4, 4};
  Graph g;
  auto& ca = g.channel<float>("A", 64);
  auto& cx = g.channel<float>("x", 64);
  auto& cy = g.channel<float>("y", 64);
  auto& out = g.channel<float>("o", 64);
  std::vector<float> got;
  g.spawn("read_A",
          stream::read_matrix<float>(MatrixView<const float>(a.data(), n, n),
                                     core::gemv_a_schedule(cfg), 1, 4, ca));
  // BUG UNDER TEST: repeat should be gemv_x_repeat() = 4, we send 1.
  g.spawn("read_x", stream::read_vector<float>(
                        VectorView<const float>(x.data(), n), 1, 4, cx));
  g.spawn("read_y", stream::read_vector<float>(
                        VectorView<const float>(y.data(), n), 1, 4, cy));
  g.spawn("gemv",
          core::gemv<float>(cfg, n, n, 1.0f, 0.0f, ca, cx, cy, out));
  g.spawn("collect", stream::collect<float>(n, out, got));
  EXPECT_THROW(g.run(), DeadlockError);
}

TEST(FailureInjection, ThrottledBankIsSlowButLive) {
  // A bank granting one float every few cycles must not deadlock — only
  // stretch the run.
  Workload wl(4);
  const std::int64_t n = 256;
  auto x = wl.vector<float>(n);
  Graph g(Mode::Cycle);
  auto& bank = g.bank("ddr", 2.0);  // half a float per cycle
  auto& ch = g.channel<float>("x", 8);
  g.spawn("read", stream::read_vector<float>(
                      VectorView<const float>(x.data(), n), 1, 16, ch,
                      &bank));
  g.spawn("sink", stream::sink<float>(n, 16, ch));
  g.run();
  // 0.5 elements/cycle -> at least 2 cycles per element.
  EXPECT_GE(g.cycles(), static_cast<std::uint64_t>(2 * n - 8));
  EXPECT_EQ(bank.total_bytes(), static_cast<std::uint64_t>(n) * 4);
}

TEST(FailureInjection, ExceptionInMidPipelineModulePropagates) {
  struct Maker {
    static stream::Task faulty(std::int64_t n, stream::Channel<float>& in,
                               stream::Channel<float>& out) {
      for (std::int64_t i = 0; i < n; ++i) {
        const float v = co_await in.pop();
        if (i == n / 2) throw std::domain_error("injected fault");
        co_await out.push(v);
      }
    }
  };
  Workload wl(5);
  Graph g;
  auto& a = g.channel<float>("a", 8);
  auto& b = g.channel<float>("b", 8);
  std::vector<float> out;
  g.spawn("feed", stream::feed(wl.vector<float>(64), a));
  g.spawn("faulty", Maker::faulty(64, a, b));
  g.spawn("collect", stream::collect<float>(64, b, out));
  EXPECT_THROW(g.run(), std::domain_error);
}

TEST(FailureInjection, SchedulerRefusesDoubleRun) {
  Graph g;
  auto& ch = g.channel<int>("c", 2);
  std::vector<int> out;
  g.spawn("feed", stream::feed(std::vector<int>{1}, ch));
  g.spawn("collect", stream::collect<int>(1, ch, out));
  g.run();
  EXPECT_THROW(g.run(), ConfigError);
}

TEST(FailureInjection, BufferViewBoundsChecked) {
  host::Device dev;
  host::Buffer<float> b(dev, 16, 0);
  EXPECT_THROW(b.vec(17), ConfigError);
  EXPECT_THROW(b.vec(9, 2), ConfigError);
  EXPECT_NO_THROW(b.vec(8, 2));
  EXPECT_THROW(b.mat(4, 5), ConfigError);
  EXPECT_NO_THROW(b.mat(4, 4));
}

TEST(FailureInjection, HostTransferSizeChecked) {
  host::Device dev;
  host::Buffer<float> b(dev, 8, 0);
  std::vector<float> wrong(7);
  EXPECT_THROW(b.write(wrong), ConfigError);
  std::vector<float> dst(9);
  EXPECT_THROW(b.read(std::span<float>(dst)), ConfigError);
}

TEST(FailureInjection, CycleModeDeadlockAlsoDetected) {
  // Deadlock detection must work when modules are parked on next_cycle
  // as well: cycle waiters drain first, then the stall is diagnosed.
  Workload wl(6);
  Graph g(Mode::Cycle);
  auto& cx = g.channel<float>("x", 8);
  auto& res = g.channel<float>("r", 2);
  std::vector<float> out;
  g.spawn("feed", stream::feed(wl.vector<float>(10), cx));
  g.spawn("asum", core::asum<float>({4}, 20, cx, res));  // wants 20, gets 10
  g.spawn("collect", stream::collect<float>(1, res, out));
  EXPECT_THROW(g.run(), DeadlockError);
}

TEST(FailureInjection, DiagnosticListsChannelOccupancy) {
  Graph g;
  auto& ch = g.channel<int>("lonely", 4);
  std::vector<int> out;
  g.spawn("collect", stream::collect<int>(1, ch, out));
  try {
    g.run();
    FAIL();
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'lonely': 0/4 buffered"), std::string::npos);
    EXPECT_NE(msg.find("0 pushed"), std::string::npos);
  }
}

// --- Fault tolerance: injected device faults, watchdog, retry/rollback,
// CPU fallback. The injector's decisions are a pure hash of (seed,
// command seq, attempt), so every test here is deterministic.

host::RetryPolicy fast_retry(int max_retries, bool cpu_fallback = false) {
  host::RetryPolicy p;
  p.max_retries = max_retries;
  p.backoff = std::chrono::microseconds(0);  // keep tests fast
  p.cpu_fallback = cpu_fallback;
  return p;
}

TEST(FaultTolerance, ConfigValidatedAtEnqueueNamingTheKnob) {
  host::Device dev;
  host::Context ctx(dev);
  host::Buffer<float> x(dev, 16, 0);
  x.write(std::vector<float>(16, 1.0f));

  host::RoutineConfig bad = ctx.config();
  bad.width = 0;
  try {
    ctx.with(bad)->scal<float>(16, 2.0f, x);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("RoutineConfig.width"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("(got 0)"), std::string::npos);
  }

  bad = ctx.config();
  bad.pe_rows = -2;
  try {
    ctx.with(bad)->scal<float>(16, 2.0f, x);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("RoutineConfig.pe_rows"),
              std::string::npos);
  }

  bad = ctx.config();
  bad.tile_cols = 0;
  EXPECT_THROW(ctx.with(bad)->scal<float>(16, 2.0f, x), ConfigError);

  // A valid config still goes through, and the guard restored the knobs.
  EXPECT_NO_THROW(ctx.scal<float>(16, 2.0f, x));
}

TEST(FaultTolerance, WatchdogCycleBudgetRaisesTimeoutOnLiveGraph) {
  // A live but slow graph (throttled bank) overruns a tiny cycle budget:
  // TimeoutError, with the same module/channel diagnostics as deadlocks.
  Workload wl(40);
  const std::int64_t n = 4096;
  auto x = wl.vector<float>(n);
  Graph g(Mode::Cycle);
  auto& bank = g.bank("ddr", 16.0);  // 1 float every 4 cycles
  auto& ch = g.channel<float>("x", 8);
  g.spawn("read", stream::read_vector<float>(
                      VectorView<const float>(x.data(), n), 1, 16, ch,
                      &bank));
  g.spawn("sink", stream::sink<float>(n, 16, ch));
  stream::Watchdog wd;
  wd.max_cycles = 64;  // far below the ~4n cycles this graph needs
  try {
    g.run(wd);
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("watchdog expired (cycle budget)"), std::string::npos);
    EXPECT_NE(msg.find("live-locked or pathologically slow"),
              std::string::npos);
    EXPECT_NE(msg.find("module 'read'"), std::string::npos);
    EXPECT_NE(msg.find("'x':"), std::string::npos);
  }
}

TEST(FaultTolerance, WedgedGraphRaisesTimeoutWithinDeadlineNotHang) {
  // An injected wedge stops all module progress mid-stream; only the
  // watchdog ends the run, well within a couple of seconds.
  host::Device dev;
  host::Context ctx(dev, stream::Mode::Cycle);
  host::FaultConfig faults;
  faults.seed = 7;
  faults.wedge_rate = 1.0;
  dev.inject_faults(faults);
  stream::Watchdog wd;
  wd.wall_deadline = std::chrono::milliseconds(100);
  ctx.set_watchdog(wd);

  host::Buffer<float> x(dev, 256, 0);
  x.write(Workload(41).vector<float>(256));
  const auto t0 = std::chrono::steady_clock::now();
  try {
    ctx.scal<float>(256, 2.0f, x);
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    EXPECT_NE(std::string(e.what()).find("wedged (injected hang)"),
              std::string::npos);
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_EQ(ctx.exec_stats().faults_injected, 1u);
}

TEST(FaultTolerance, WedgeRecoversViaRetry) {
  // One wedge (budgeted), watchdog + retry: the first attempt times out,
  // the write-set rolls back, and the clean re-run completes the command.
  host::Device dev;
  host::Context ctx(dev, stream::Mode::Cycle);
  host::FaultConfig faults;
  faults.seed = 7;
  faults.wedge_rate = 1.0;
  faults.max_faults = 1;
  dev.inject_faults(faults);
  stream::Watchdog wd;
  wd.max_cycles = 1u << 20;
  ctx.set_watchdog(wd);
  ctx.set_retry_policy(fast_retry(2));

  const std::int64_t n = 256;
  auto hx = Workload(42).vector<float>(n);
  host::Buffer<float> x(dev, n, 0);
  x.write(hx);
  ctx.scal<float>(n, 3.0f, x);

  for (float& v : hx) v *= 3.0f;
  EXPECT_EQ(x.to_host(), hx);
  const auto stats = ctx.exec_stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.faults_injected, 1u);
  EXPECT_EQ(stats.degraded, 0u);
}

TEST(FaultTolerance, CorruptedGemmRollsBackAndRetriesBitIdentical) {
  // Two detected transfer corruptions actually mangle C's bytes; each
  // retry must restore the snapshot or beta*C would compound the damage.
  const std::int64_t m = 24, n = 20, k = 16;
  Workload wl(43);
  const auto ha = wl.matrix<float>(m, k);
  const auto hb = wl.matrix<float>(k, n);
  const auto hc = wl.matrix<float>(m, n);

  auto run = [&](bool with_faults) {
    host::Device dev;
    host::Context ctx(dev);
    if (with_faults) {
      host::FaultConfig faults;
      faults.seed = 11;
      faults.corrupt_rate = 1.0;
      faults.max_faults = 2;
      dev.inject_faults(faults);
      ctx.set_retry_policy(fast_retry(3));
    }
    host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
    a.write(ha);
    b.write(hb);
    c.write(hc);
    ctx.gemm<float>(Transpose::None, Transpose::None, m, n, k, 1.5f, a, b,
                    0.5f, c);
    return std::make_pair(c.to_host(), ctx.exec_stats());
  };

  const auto [clean, clean_stats] = run(false);
  const auto [faulty, faulty_stats] = run(true);
  EXPECT_EQ(clean, faulty);  // bit-identical despite two corrupted attempts
  EXPECT_EQ(clean_stats.retries, 0u);
  EXPECT_EQ(faulty_stats.retries, 2u);
  EXPECT_EQ(faulty_stats.faults_injected, 2u);
  EXPECT_EQ(faulty_stats.degraded, 0u);
  // A single-device Context is a pool of one: the per-device breakdown
  // has exactly one entry and it reconciles with the globals.
  ASSERT_EQ(faulty_stats.per_device.size(), 1u);
  EXPECT_EQ(faulty_stats.per_device[0].faults,
            faulty_stats.faults_injected);
  EXPECT_EQ(faulty_stats.per_device[0].failed_attempts,
            faulty_stats.retries);
  EXPECT_EQ(faulty_stats.per_device[0].executed, faulty_stats.executed);
}

TEST(FaultTolerance, SeededFaultsDeterministicAcrossExecutorPolicies) {
  // The same seed must produce the same faults — and after retries the
  // same bits — whether commands run serially or on a 4-worker pool,
  // because decisions hash (seed, seq, attempt), not a shared RNG stream.
  const std::int64_t n = 512;
  auto run = [&](int workers) {
    host::Device dev;
    host::Context ctx(dev, stream::Mode::Functional, workers);
    host::FaultConfig faults;
    faults.seed = 99;
    faults.launch_fail_rate = 0.25;
    faults.corrupt_rate = 0.25;
    dev.inject_faults(faults);
    ctx.set_retry_policy(fast_retry(8));
    Workload wl(44);
    std::vector<host::Buffer<float>> bufs;
    for (int i = 0; i < 4; ++i) {
      bufs.emplace_back(dev, n, i % dev.bank_count());
      bufs.back().write(wl.vector<float>(n));
    }
    for (int round = 0; round < 8; ++round) {
      ctx.scal_async<float>(n, 1.01f, bufs[0], 1);
      ctx.axpy_async<float>(n, 0.5f, bufs[0], 1, bufs[1], 1);
      ctx.copy_async<float>(n, bufs[1], 1, bufs[2], 1);
      ctx.axpy_async<float>(n, -0.25f, bufs[2], 1, bufs[3], 1);
    }
    ctx.finish();
    std::vector<std::vector<float>> out;
    for (auto& b : bufs) out.push_back(b.to_host());
    return std::make_pair(out, ctx.exec_stats());
  };

  const auto [serial, serial_stats] = run(0);
  const auto [pooled, pooled_stats] = run(4);
  EXPECT_EQ(serial, pooled);
  EXPECT_EQ(serial_stats.faults_injected, pooled_stats.faults_injected);
  EXPECT_EQ(serial_stats.retries, pooled_stats.retries);
  EXPECT_GT(serial_stats.retries, 0u);
  // Per-device sums reconcile under both executor policies.
  for (const host::ExecStats& stats : {serial_stats, pooled_stats}) {
    std::uint64_t faults = 0, executed = 0, failed = 0;
    for (const host::PerDeviceStats& d : stats.per_device) {
      faults += d.faults;
      executed += d.executed;
      failed += d.failed_attempts;
    }
    EXPECT_EQ(faults, stats.faults_injected);
    EXPECT_EQ(executed, stats.executed);
    EXPECT_EQ(failed, stats.retries);
  }
}

TEST(FaultTolerance, CpuFallbackDegradesLevel1) {
  // Every launch fails: retries exhaust, the refblas fallback serves the
  // result, and the command reports Degraded instead of Failed.
  const std::int64_t n = 128;
  Workload wl(45);
  auto hx = wl.vector<float>(n);
  auto hy = wl.vector<float>(n);

  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig faults;
  faults.seed = 5;
  faults.launch_fail_rate = 1.0;
  dev.inject_faults(faults);
  ctx.set_retry_policy(fast_retry(1, /*cpu_fallback=*/true));
  host::Buffer<float> x(dev, n, 0), y(dev, n, 1);
  x.write(hx);
  y.write(hy);
  host::Event e = ctx.axpy_async<float>(n, 2.0f, x, 1, y, 1);
  EXPECT_NO_THROW(e.wait());

  ref::axpy(2.0f, VectorView<const float>(hx.data(), n),
            VectorView<float>(hy.data(), n));
  EXPECT_EQ(y.to_host(), hy);
  const host::CommandStatus st = e.status();
  EXPECT_TRUE(st.degraded());
  EXPECT_NE(st.message.find("degraded to CPU fallback"), std::string::npos);
  EXPECT_NE(st.message.find("injected kernel launch failure"),
            std::string::npos);
  const auto stats = ctx.exec_stats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.retries, 1u);
}

TEST(FaultTolerance, CpuFallbackDegradesLevel2) {
  const std::int64_t rows = 32, cols = 24;
  Workload wl(46);
  auto ha = wl.matrix<float>(rows, cols);
  auto hx = wl.vector<float>(cols);
  auto hy = wl.vector<float>(rows);

  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig faults;
  faults.seed = 5;
  faults.launch_fail_rate = 1.0;
  dev.inject_faults(faults);
  ctx.set_retry_policy(fast_retry(1, /*cpu_fallback=*/true));
  host::Buffer<float> a(dev, rows * cols, 0), x(dev, cols, 1), y(dev, rows, 2);
  a.write(ha);
  x.write(hx);
  y.write(hy);
  host::Event e =
      ctx.gemv_async<float>(Transpose::None, rows, cols, 1.25f, a, x, 1,
                            0.75f, y, 1);
  EXPECT_NO_THROW(e.wait());

  ref::gemv(Transpose::None, 1.25f,
            MatrixView<const float>(ha.data(), rows, cols),
            VectorView<const float>(hx.data(), cols), 0.75f,
            VectorView<float>(hy.data(), rows));
  EXPECT_EQ(y.to_host(), hy);
  EXPECT_TRUE(e.status().degraded());
}

TEST(FaultTolerance, CpuFallbackDegradesLevel3) {
  const std::int64_t m = 16, n = 12, k = 20;
  Workload wl(47);
  auto ha = wl.matrix<float>(m, k);
  auto hb = wl.matrix<float>(k, n);
  auto hc = wl.matrix<float>(m, n);

  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig faults;
  faults.seed = 5;
  faults.launch_fail_rate = 1.0;
  dev.inject_faults(faults);
  ctx.set_retry_policy(fast_retry(1, /*cpu_fallback=*/true));
  host::Buffer<float> a(dev, m * k, 0), b(dev, k * n, 1), c(dev, m * n, 2);
  a.write(ha);
  b.write(hb);
  c.write(hc);
  host::Event e = ctx.gemm_async<float>(Transpose::None, Transpose::None, m,
                                        n, k, 2.0f, a, b, 0.5f, c);
  EXPECT_NO_THROW(e.wait());

  ref::gemm(Transpose::None, Transpose::None, 2.0f,
            MatrixView<const float>(ha.data(), m, k),
            MatrixView<const float>(hb.data(), k, n), 0.5f,
            MatrixView<float>(hc.data(), m, n));
  EXPECT_EQ(c.to_host(), hc);
  EXPECT_TRUE(e.status().degraded());
}

TEST(FaultTolerance, ExhaustedRetriesWithoutFallbackFailTransactionally) {
  // No fallback: after retries the command fails — but its write-set was
  // rolled back, so the buffer still holds the pre-command bytes, and
  // Event::status() reports the failure without wait() being the only
  // channel.
  const std::int64_t n = 64;
  auto hx = Workload(48).vector<float>(n);
  host::Device dev;
  host::Context ctx(dev);
  host::FaultConfig faults;
  faults.seed = 3;
  faults.corrupt_rate = 1.0;
  dev.inject_faults(faults);
  ctx.set_retry_policy(fast_retry(2));
  host::Buffer<float> x(dev, n, 0);
  x.write(hx);
  host::Event e = ctx.scal_async<float>(n, 2.0f, x, 1);
  EXPECT_THROW(e.wait(), DeviceError);
  EXPECT_EQ(x.to_host(), hx);  // rolled back, not half-scaled or corrupted
  const host::CommandStatus st = e.status();
  EXPECT_TRUE(st.failed());
  EXPECT_NE(st.message.find("injected transfer corruption"),
            std::string::npos);
  EXPECT_EQ(ctx.exec_stats().retries, 2u);
}

TEST(FaultTolerance, EightGemvOverlapSurvivesFivePercentLaunchFaults) {
  // Acceptance workload: 8 independent GEMVs on the 4-worker executor
  // with a 5% launch-failure rate complete bit-identically to a clean
  // run, with at least one retry actually exercised.
  const std::int64_t rows = 96, cols = 96;
  const int batch = 8;
  auto run = [&](std::uint64_t seed, bool with_faults) {
    host::Device dev;
    host::Context ctx(dev, stream::Mode::Cycle, 4);
    if (with_faults) {
      host::FaultConfig faults;
      faults.seed = seed;
      faults.launch_fail_rate = 0.05;
      dev.inject_faults(faults);
      ctx.set_retry_policy(fast_retry(4));
    }
    Workload wl(49);
    const auto ha = wl.matrix<float>(rows, cols);
    host::Buffer<float> a(dev, rows * cols, 0);
    a.write(ha);
    std::vector<host::Buffer<float>> xs, ys;
    for (int i = 0; i < batch; ++i) {
      xs.emplace_back(dev, cols, 1);
      ys.emplace_back(dev, rows, 2);
      xs.back().write(wl.vector<float>(cols));
      ys.back().write(std::vector<float>(rows, 0.0f));
    }
    for (int i = 0; i < batch; ++i) {
      ctx.gemv_async<float>(Transpose::None, rows, cols, 1.0f, a, xs[i], 1,
                            0.0f, ys[i], 1);
    }
    ctx.finish();
    std::vector<std::vector<float>> out;
    for (auto& y : ys) out.push_back(y.to_host());
    return std::make_pair(out, ctx.exec_stats());
  };

  const auto [clean, clean_stats] = run(0, false);
  // Seed chosen so that the 5% rate actually draws >= 1 fault across the
  // 8 launches (deterministic: decisions hash seed/seq/attempt).
  const auto [faulty, faulty_stats] = run(4, true);
  EXPECT_EQ(clean, faulty);
  EXPECT_GT(faulty_stats.retries, 0u);
  EXPECT_GT(faulty_stats.faults_injected, 0u);
  EXPECT_EQ(faulty_stats.degraded, 0u);
  EXPECT_EQ(clean_stats.retries, 0u);
}

}  // namespace
}  // namespace fblas
