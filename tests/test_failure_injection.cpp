// Failure injection: wrong element counts, starved channels, throttled
// banks, exceptions thrown mid-pipeline, misused buffers. The simulator
// must fail loudly and precisely (the right exception, the right module
// named) — silent wrong answers or hangs would invalidate every other
// experiment built on it.
#include <gtest/gtest.h>

#include "common/workload.hpp"
#include "fblas/level1.hpp"
#include "fblas/level2.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas {
namespace {

using stream::Graph;
using stream::Mode;

TEST(FailureInjection, ProducerShortfallNamesTheStarvedModule) {
  // The DOT module expects 100 elements; the feeders provide 90.
  Graph g;
  auto& cx = g.channel<float>("x", 16);
  auto& cy = g.channel<float>("y", 16);
  auto& res = g.channel<float>("res", 2);
  std::vector<float> out;
  Workload wl(1);
  g.spawn("feed_x", stream::feed(wl.vector<float>(90), cx));
  g.spawn("feed_y", stream::feed(wl.vector<float>(100), cy));
  g.spawn("dot", core::dot<float>({8}, 100, cx, cy, res));
  g.spawn("collect", stream::collect<float>(1, res, out));
  try {
    g.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'dot'"), std::string::npos);
    EXPECT_NE(msg.find("popping"), std::string::npos);
    EXPECT_NE(msg.find("'x'"), std::string::npos);
  }
}

TEST(FailureInjection, ConsumerShortfallNamesTheBlockedProducer) {
  // The collector wants fewer elements than produced: the producer ends
  // up blocked pushing into a full channel.
  Graph g;
  auto& ch = g.channel<float>("out", 4);
  std::vector<float> out;
  Workload wl(2);
  g.spawn("feed", stream::feed(wl.vector<float>(100), ch));
  g.spawn("collect", stream::collect<float>(10, ch, out));
  try {
    g.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'feed'"), std::string::npos);
    EXPECT_NE(msg.find("pushing"), std::string::npos);
  }
}

TEST(FailureInjection, WrongGemvReplayCountDeadlocks) {
  // Feeding x without the required replay starves the tiled GEMV —
  // exactly the condition (1) violation of Sec. V.
  Workload wl(3);
  const std::int64_t n = 16;
  auto a = wl.matrix<float>(n, n);
  auto x = wl.vector<float>(n);
  auto y = wl.vector<float>(n);
  core::GemvConfig cfg{Transpose::None, core::MatrixTiling::TilesByRows, 4,
                       4, 4};
  Graph g;
  auto& ca = g.channel<float>("A", 64);
  auto& cx = g.channel<float>("x", 64);
  auto& cy = g.channel<float>("y", 64);
  auto& out = g.channel<float>("o", 64);
  std::vector<float> got;
  g.spawn("read_A",
          stream::read_matrix<float>(MatrixView<const float>(a.data(), n, n),
                                     core::gemv_a_schedule(cfg), 1, 4, ca));
  // BUG UNDER TEST: repeat should be gemv_x_repeat() = 4, we send 1.
  g.spawn("read_x", stream::read_vector<float>(
                        VectorView<const float>(x.data(), n), 1, 4, cx));
  g.spawn("read_y", stream::read_vector<float>(
                        VectorView<const float>(y.data(), n), 1, 4, cy));
  g.spawn("gemv",
          core::gemv<float>(cfg, n, n, 1.0f, 0.0f, ca, cx, cy, out));
  g.spawn("collect", stream::collect<float>(n, out, got));
  EXPECT_THROW(g.run(), DeadlockError);
}

TEST(FailureInjection, ThrottledBankIsSlowButLive) {
  // A bank granting one float every few cycles must not deadlock — only
  // stretch the run.
  Workload wl(4);
  const std::int64_t n = 256;
  auto x = wl.vector<float>(n);
  Graph g(Mode::Cycle);
  auto& bank = g.bank("ddr", 2.0);  // half a float per cycle
  auto& ch = g.channel<float>("x", 8);
  g.spawn("read", stream::read_vector<float>(
                      VectorView<const float>(x.data(), n), 1, 16, ch,
                      &bank));
  g.spawn("sink", stream::sink<float>(n, 16, ch));
  g.run();
  // 0.5 elements/cycle -> at least 2 cycles per element.
  EXPECT_GE(g.cycles(), static_cast<std::uint64_t>(2 * n - 8));
  EXPECT_EQ(bank.total_bytes(), static_cast<std::uint64_t>(n) * 4);
}

TEST(FailureInjection, ExceptionInMidPipelineModulePropagates) {
  struct Maker {
    static stream::Task faulty(std::int64_t n, stream::Channel<float>& in,
                               stream::Channel<float>& out) {
      for (std::int64_t i = 0; i < n; ++i) {
        const float v = co_await in.pop();
        if (i == n / 2) throw std::domain_error("injected fault");
        co_await out.push(v);
      }
    }
  };
  Workload wl(5);
  Graph g;
  auto& a = g.channel<float>("a", 8);
  auto& b = g.channel<float>("b", 8);
  std::vector<float> out;
  g.spawn("feed", stream::feed(wl.vector<float>(64), a));
  g.spawn("faulty", Maker::faulty(64, a, b));
  g.spawn("collect", stream::collect<float>(64, b, out));
  EXPECT_THROW(g.run(), std::domain_error);
}

TEST(FailureInjection, SchedulerRefusesDoubleRun) {
  Graph g;
  auto& ch = g.channel<int>("c", 2);
  std::vector<int> out;
  g.spawn("feed", stream::feed(std::vector<int>{1}, ch));
  g.spawn("collect", stream::collect<int>(1, ch, out));
  g.run();
  EXPECT_THROW(g.run(), ConfigError);
}

TEST(FailureInjection, BufferViewBoundsChecked) {
  host::Device dev;
  host::Buffer<float> b(dev, 16, 0);
  EXPECT_THROW(b.vec(17), ConfigError);
  EXPECT_THROW(b.vec(9, 2), ConfigError);
  EXPECT_NO_THROW(b.vec(8, 2));
  EXPECT_THROW(b.mat(4, 5), ConfigError);
  EXPECT_NO_THROW(b.mat(4, 4));
}

TEST(FailureInjection, HostTransferSizeChecked) {
  host::Device dev;
  host::Buffer<float> b(dev, 8, 0);
  std::vector<float> wrong(7);
  EXPECT_THROW(b.write(wrong), ConfigError);
  std::vector<float> dst(9);
  EXPECT_THROW(b.read(std::span<float>(dst)), ConfigError);
}

TEST(FailureInjection, CycleModeDeadlockAlsoDetected) {
  // Deadlock detection must work when modules are parked on next_cycle
  // as well: cycle waiters drain first, then the stall is diagnosed.
  Workload wl(6);
  Graph g(Mode::Cycle);
  auto& cx = g.channel<float>("x", 8);
  auto& res = g.channel<float>("r", 2);
  std::vector<float> out;
  g.spawn("feed", stream::feed(wl.vector<float>(10), cx));
  g.spawn("asum", core::asum<float>({4}, 20, cx, res));  // wants 20, gets 10
  g.spawn("collect", stream::collect<float>(1, res, out));
  EXPECT_THROW(g.run(), DeadlockError);
}

TEST(FailureInjection, DiagnosticListsChannelOccupancy) {
  Graph g;
  auto& ch = g.channel<int>("lonely", 4);
  std::vector<int> out;
  g.spawn("collect", stream::collect<int>(1, ch, out));
  try {
    g.run();
    FAIL();
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'lonely': 0/4 buffered"), std::string::npos);
    EXPECT_NE(msg.find("0 pushed"), std::string::npos);
  }
}

}  // namespace
}  // namespace fblas
