// Tests for the device database and the space/time models, checked
// against the paper's published numbers (Tables I-III, Sec. IV formulas).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/workload.hpp"
#include "fblas/level3.hpp"
#include "sim/device.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"
#include "sim/frequency_model.hpp"
#include "sim/perf_model.hpp"
#include "sim/power_model.hpp"
#include "sim/resource_model.hpp"
#include "sim/work_depth.hpp"

namespace fblas::sim {
namespace {

TEST(Device, TableIIValues) {
  const auto& a = arria10();
  EXPECT_EQ(a.alm_total, 427'000);
  EXPECT_EQ(a.dsp_avail, 1518);
  EXPECT_EQ(a.ddr_banks, 2);
  EXPECT_FALSE(a.has_hyperflex);
  const auto& s = stratix10();
  EXPECT_EQ(s.alm_avail, 692'000);
  EXPECT_EQ(s.m20k_avail, 8'900);
  EXPECT_EQ(s.dsp_avail, 4'468);
  EXPECT_EQ(s.ddr_banks, 4);
  EXPECT_TRUE(s.has_hyperflex);
  EXPECT_FALSE(s.hardened_double);
  EXPECT_NEAR(s.total_bandwidth_gbs(), 76.8, 1e-9);
}

TEST(Device, NameLookup) {
  EXPECT_EQ(device_from_name("arria10"), DeviceId::Arria10);
  EXPECT_EQ(device_from_name("stratix"), DeviceId::Stratix10);
  EXPECT_THROW(device_from_name("virtex"), ConfigError);
  EXPECT_EQ(&device(DeviceId::Stratix10), &stratix10());
}

TEST(WorkDepth, ScalIsMapClass) {
  // Sec. IV-A: SCAL has AW = N, AD = LM; CW = W, CD = LM.
  const auto wd = analyze(RoutineKind::Scal, Precision::Single, 4, 1000,
                          stratix10());
  EXPECT_DOUBLE_EQ(wd.app_work, 1000);
  EXPECT_DOUBLE_EQ(wd.app_depth, 6);
  EXPECT_DOUBLE_EQ(wd.circuit_work, 4);
  EXPECT_DOUBLE_EQ(wd.circuit_depth, 6);
}

TEST(WorkDepth, DotIsMapReduceClass) {
  // DOT: AW = 2N-1, AD = log2(N) LA + LM; CW = 2W, CD = log2(W) LA + LM.
  const auto wd = analyze(RoutineKind::Dot, Precision::Single, 4, 1024,
                          stratix10());
  EXPECT_DOUBLE_EQ(wd.app_work, 2047);
  EXPECT_DOUBLE_EQ(wd.app_depth, 10 * 6 + 6);
  EXPECT_DOUBLE_EQ(wd.circuit_work, 8);
  EXPECT_DOUBLE_EQ(wd.circuit_depth, 2 * 6 + 6);
}

TEST(WorkDepth, DoubleIsDeeper) {
  const auto s = analyze(RoutineKind::Dot, Precision::Single, 16, 1 << 20,
                         stratix10());
  const auto d = analyze(RoutineKind::Dot, Precision::Double, 16, 1 << 20,
                         stratix10());
  EXPECT_GT(d.circuit_depth, s.circuit_depth);
}

TEST(WorkDepth, PipelineCycleModel) {
  // C = L + I*M with I = 1.
  EXPECT_DOUBLE_EQ(pipeline_cycles(50, 1000), 1050);
}

TEST(ResourceModel, Table1ScalScaling) {
  // Table I: SCAL LUT = 49 CW, FF = 96 CW, DSP = CW, latency 50.
  for (int w : {2, 4, 8, 16, 32, 64}) {
    const auto c = table1_circuit(RoutineKind::Scal, w, stratix10());
    EXPECT_DOUBLE_EQ(c.luts, 49.0 * w);
    EXPECT_DOUBLE_EQ(c.ffs, 96.0 * w);
    EXPECT_DOUBLE_EQ(c.dsps, w);
    EXPECT_DOUBLE_EQ(c.latency_cycles, 50);
  }
}

TEST(ResourceModel, Table1DotScaling) {
  // Table I DOT @ W=2: 174 LUTs, 2 DSPs, latency ~82; latency grows
  // logarithmically, resources linearly.
  const auto w2 = table1_circuit(RoutineKind::Dot, 2, stratix10());
  EXPECT_NEAR(w2.luts, 174, 5);
  EXPECT_DOUBLE_EQ(w2.dsps, 2);
  EXPECT_NEAR(w2.latency_cycles, 82, 1);
  const auto w64 = table1_circuit(RoutineKind::Dot, 64, stratix10());
  EXPECT_DOUBLE_EQ(w64.dsps, 64);
  EXPECT_NEAR(w64.latency_cycles, 112, 8);  // paper: 105
  // Linear resource growth.
  EXPECT_NEAR(w64.luts - 102, (w2.luts - 102) * 32, 1);
}

TEST(ResourceModel, FullDesignInTableIIIBallpark) {
  // Stratix SDOT W=256: paper reports 123.1K ALMs, 328 DSPs.
  ModuleShape sdot{RoutineKind::Dot, Precision::Single, 256, 0, 0, 0, 0};
  const auto r = estimate_design(sdot, stratix10());
  EXPECT_NEAR(r.alms, 123'100, 15'000);
  EXPECT_NEAR(r.dsps, 328, 80);
  // DDOT W=128: 235.1K ALMs, 512 DSPs.
  ModuleShape ddot{RoutineKind::Dot, Precision::Double, 128, 0, 0, 0, 0};
  const auto rd = estimate_design(ddot, stratix10());
  EXPECT_NEAR(rd.alms, 235'100, 25'000);
  EXPECT_NEAR(rd.dsps, 542, 40);  // 4 DSPs per double lane + shell
}

TEST(ResourceModel, GemmDesignBallpark) {
  // Stratix SGEMM 40x80, memory tile 480x960: 3270 DSPs, ~86% M20K.
  ModuleShape sgemm{RoutineKind::Gemm, Precision::Single, 1, 480, 960, 40, 80};
  const auto r = estimate_design(sgemm, stratix10());
  EXPECT_NEAR(r.dsps, 3270, 100);
  EXPECT_GT(r.m20ks / 8900.0, 0.3);
  EXPECT_LT(utilization(r, stratix10()), 1.0);
}

TEST(ResourceModel, CheckFitsThrows) {
  Resources r;
  r.dsps = 10'000;  // more than any device has
  EXPECT_THROW(check_fits(r, stratix10()), FitError);
  r.dsps = 10;
  EXPECT_NO_THROW(check_fits(r, arria10()));
}

TEST(ResourceModel, FeasibilityLimitsMatchPaper) {
  // Double-precision DOT cannot route at W=256 but can at 128 (Sec. VI-B).
  ModuleShape d{RoutineKind::Dot, Precision::Double, 256, 0, 0, 0, 0};
  EXPECT_FALSE(place_and_route_feasible(d, stratix10()));
  d.width = 128;
  EXPECT_TRUE(place_and_route_feasible(d, stratix10()));
  // Grid ceilings: 40x80 single routes on Stratix, 48x80 does not.
  ModuleShape g{RoutineKind::Gemm, Precision::Single, 1, 480, 960, 40, 80};
  EXPECT_TRUE(place_and_route_feasible(g, stratix10()));
  g.pe_rows = 48;
  EXPECT_FALSE(place_and_route_feasible(g, stratix10()));
  // Arria double tops out at 16x8.
  ModuleShape ad{RoutineKind::Gemm, Precision::Double, 1, 192, 96, 16, 16};
  EXPECT_FALSE(place_and_route_feasible(ad, arria10()));
  ad.pe_cols = 8;
  EXPECT_TRUE(place_and_route_feasible(ad, arria10()));
}

TEST(FrequencyModel, HyperflexOnStratixLevel1) {
  const auto f = module_frequency(RoutineKind::Dot, Precision::Single,
                                  stratix10());
  EXPECT_TRUE(f.hyperflex);
  EXPECT_NEAR(f.mhz, 365, 15);
  const auto fa = module_frequency(RoutineKind::Dot, Precision::Single,
                                   arria10());
  EXPECT_FALSE(fa.hyperflex);
  EXPECT_NEAR(fa.mhz, 150, 10);
}

TEST(FrequencyModel, GemmFrequencyDropsWithGridSize) {
  const auto big = gemm_frequency(40, 80, Precision::Single, stratix10());
  const auto small = gemm_frequency(16, 16, Precision::Double, stratix10());
  EXPECT_NEAR(big.mhz, 216, 15);    // Table III
  EXPECT_NEAR(small.mhz, 260, 15);  // Table III
  EXPECT_LT(big.mhz, small.mhz);
  const auto arria_big = gemm_frequency(32, 32, Precision::Single, arria10());
  EXPECT_NEAR(arria_big.mhz, 197, 15);
}

TEST(FrequencyModel, CompositionPenalty) {
  const auto axpydot = composition_frequency(0, Precision::Single, stratix10());
  EXPECT_NEAR(axpydot.mhz, 370, 10);  // Table VI
  const auto bicg = composition_frequency(2, Precision::Single, stratix10());
  EXPECT_NEAR(bicg.mhz, 230, 25);  // Table VI: 220-238
  EXPECT_LT(bicg.mhz, axpydot.mhz);
}

TEST(PowerModel, BoardPowerInTableIIIRange) {
  // Stratix designs draw ~59-71 W; Arria ~47-52 W.
  ModuleShape sdot{RoutineKind::Dot, Precision::Single, 256, 0, 0, 0, 0};
  const auto rs = estimate_design(sdot, stratix10());
  const double ps = board_power_watts(rs, 358, stratix10());
  EXPECT_GT(ps, 55);
  EXPECT_LT(ps, 75);
  const auto ra = estimate_design(sdot, arria10());
  const double pa = board_power_watts(ra, 150, arria10());
  EXPECT_GT(pa, 44);
  EXPECT_LT(pa, 55);
  EXPECT_LT(pa, ps);
}

TEST(PowerModel, CpuPowerInMammutRange) {
  EXPECT_GT(cpu_power_watts(1, Precision::Single), 70);
  EXPECT_LT(cpu_power_watts(3, Precision::Double), 90);
  // FPGA uses ~30% less power than the CPU for the measured workloads.
  ModuleShape sgemv{RoutineKind::Gemv, Precision::Single, 64, 2048, 2048, 0, 0};
  const auto r = estimate_design(sgemv, stratix10());
  const double fpga = board_power_watts(r, 347, stratix10());
  const double cpu = cpu_power_watts(2, Precision::Single);
  EXPECT_LT(fpga, cpu);
}

TEST(PerfModel, Level1CycleModel) {
  // DOT at W=32 over N elements: C = CD + N/W.
  const auto t = level1_timing(RoutineKind::Dot, Precision::Single, 32,
                               1 << 20, stratix10());
  const auto wd = analyze(RoutineKind::Dot, Precision::Single, 32, 1 << 20,
                          stratix10());
  EXPECT_DOUBLE_EQ(t.cycles, wd.circuit_depth + (1 << 20) / 32);
  EXPECT_GT(t.gops, 0);
  // Asymptotically the module hits the expected performance bar.
  EXPECT_NEAR(t.gops / t.expected_gops, 1.0, 0.01);
}

TEST(PerfModel, ExpectedPerformanceScalesWithWidth) {
  const auto w16 = level1_timing(RoutineKind::Dot, Precision::Single, 16,
                                 100'000'000, stratix10());
  const auto w256 = level1_timing(RoutineKind::Dot, Precision::Single, 256,
                                  100'000'000, stratix10());
  EXPECT_NEAR(w256.expected_gops / w16.expected_gops, 16.0, 0.01);
  EXPECT_NEAR(w256.gops / w16.gops, 16.0, 0.1);
}

TEST(PerfModel, GemmPeakMatchesHeadline) {
  // Stratix SGEMM 40x80 at ratio 12 approaches the expected performance
  // and lands near the paper's 1.28 TFlop/s peak.
  GemmShape shape{40, 80, 40 * 12, 80 * 12};
  // Matrices of 5x the memory tile in each dimension (the Fig. 10 setup).
  const auto t = gemm_timing(Precision::Single, shape, 5 * shape.tile_rows,
                             5 * shape.tile_cols, 5 * shape.tile_rows,
                             stratix10(), stratix10().bank_bandwidth_gbs);
  EXPECT_FALSE(t.memory_bound);
  EXPECT_GT(t.gops / t.expected_gops, 0.9);
  EXPECT_NEAR(t.gops, 1280, 150);
}

TEST(PerfModel, GemmSmallRatioIsMemoryBound) {
  GemmShape shape{40, 80, 40 * 3, 80 * 3};
  const std::int64_t n = 5 * shape.tile_rows;
  const auto t = gemm_timing(Precision::Single, shape, n, n, n, stratix10(),
                             stratix10().bank_bandwidth_gbs);
  EXPECT_TRUE(t.memory_bound);
  EXPECT_LT(t.gops / t.expected_gops, 0.75);
}

TEST(PerfModel, GemmModelPinnedToCycleSimulation) {
  // Same epistemic link as the GEMV pin: the tile model the Fig. 10
  // benches extrapolate with must match the cycle simulator at a small
  // scale (unthrottled memory).
  fblas::Workload wl(209);
  const std::int64_t n = 64;
  auto a = wl.matrix<float>(n, n);
  auto b = wl.matrix<float>(n, n);
  const fblas::core::GemmConfig cfg{4, 4, 16, 16};
  fblas::stream::Graph g(fblas::stream::Mode::Cycle);
  auto& ca = g.channel<float>("A", 256);
  auto& cb = g.channel<float>("B", 256);
  auto& cc = g.channel<float>("Cin", 4);
  auto& out = g.channel<float>("out", 256);
  g.spawn("read_A", fblas::core::read_a_gemm<float>(
                        fblas::MatrixView<const float>(a.data(), n, n), cfg,
                        n, ca));
  g.spawn("read_B", fblas::core::read_b_gemm<float>(
                        fblas::MatrixView<const float>(b.data(), n, n), cfg,
                        n, cb));
  g.spawn("gemm", fblas::core::gemm<float>(cfg, n, n, n, 1.0f, 0.0f, ca, cb,
                                           cc, out));
  g.spawn("sink", fblas::stream::sink<float>(n * n, cfg.pe_cols, out));
  g.run();
  const GemmShape shape{4, 4, 16, 16};
  const auto model = gemm_timing(Precision::Single, shape, n, n, n,
                                 stratix10(), 1e6);
  EXPECT_NEAR(static_cast<double>(g.cycles()) / model.cycles, 1.0, 0.05);
}

TEST(PerfModel, OptimalWidthFormulas) {
  // Sec. IV-B: W = ceil(B / (2 S F)) for DOT.
  // B = 19.2 GB/s, F = 300 MHz, S = 4: W = ceil(19.2e9 / (2*4*3e8)) = 8.
  EXPECT_EQ(optimal_width(19.2, 300, 4, 2), 8);
  EXPECT_EQ(optimal_width(19.2, 300, 4, 1), 16);
  // The tiled refinement approaches B/(F*S) = 16 for large tiles.
  EXPECT_EQ(optimal_width_tiled(19.2, 300, 4, 1024, 1024), 16);
  // Tiny tiles gain almost nothing.
  EXPECT_LT(optimal_width_tiled(19.2, 300, 4, 1, 1), 16);
}

TEST(PerfModel, MemoryBoundTiming) {
  // 1M compute cycles vs I/O that needs 2M cycles: I/O wins.
  const auto t = memory_bound_timing(1e6, 300, 1e6, 8e6, 4, 19.2 * 0.5, false);
  EXPECT_TRUE(t.memory_bound);
  EXPECT_GT(t.cycles, 9.9e5);
}

TEST(PerfModel, TrsvPaysDependencyLatency) {
  // TRSV cannot hide the substitution dependency: its cycles exceed the
  // pure element count, and the gap grows linearly in n.
  const auto t = trsv_timing(Precision::Single, 8, 1024, stratix10());
  const double elem_cycles = 1024.0 * 1025.0 / 2.0 / 8.0;
  EXPECT_GT(t.cycles, elem_cycles);
  EXPECT_NEAR(t.cycles - elem_cycles, 1024.0 * 12.0, 1.0);
  // Double precision doubles the chain latency.
  const auto d = trsv_timing(Precision::Double, 8, 1024, stratix10());
  EXPECT_GT(d.cycles, t.cycles);
  EXPECT_THROW(trsv_timing(Precision::Single, 0, 8, stratix10()),
               ConfigError);
}

TEST(PerfModel, BatchedUnrolledShape) {
  // Table V shape: FPGA batched GEMM-4 single precision beats the CPU at
  // large batch counts; time grows roughly linearly with batch.
  const auto t8k = batched_unrolled_timing(RoutineKind::Gemm,
                                           Precision::Single, 4, 8192,
                                           stratix10());
  const auto t32k = batched_unrolled_timing(RoutineKind::Gemm,
                                            Precision::Single, 4, 32768,
                                            stratix10());
  EXPECT_GT(t32k.seconds, t8k.seconds);
  EXPECT_LT(t32k.seconds, 4 * t8k.seconds);  // amortized launch overhead
  EXPECT_NEAR(t8k.seconds * 1e6, 144.7, 60);   // paper: 144.7 usec
  EXPECT_NEAR(t32k.seconds * 1e6, 275.3, 120); // paper: 275.3 usec
  EXPECT_THROW(batched_unrolled_timing(RoutineKind::Dot, Precision::Single,
                                       4, 8, stratix10()),
               ConfigError);
}

}  // namespace
}  // namespace fblas::sim
