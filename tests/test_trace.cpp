// Tests for the tracing/metrics layer (src/trace): span lifecycle
// reconciliation against ExecStats (serial and 4-worker chaos), the
// bounded ring's drop-oldest behavior with exact counters, engine-side
// summaries, the two-clock span model, and the Chrome trace-event JSON
// schema (parsed back with the repo's own JSON parser, so the export
// provably loads in chrome://tracing).
//
// Labeled `trace` (ctest -L trace); CI runs it under ASan and TSan too.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/atax.hpp"
#include "codegen/json.hpp"
#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "host/device_pool.hpp"
#include "trace/chrome.hpp"
#include "trace/trace.hpp"
#include "verify/options.hpp"

namespace fblas {
namespace {

host::RetryPolicy relaxed_retry() {
  host::RetryPolicy p;
  p.max_retries = 8;
  p.backoff = std::chrono::microseconds(0);
  p.full_jitter = true;
  p.jitter_seed = 7;
  return p;
}

const trace::DeviceMetrics& device_metric(const trace::MetricsSnapshot& m,
                                          std::size_t i) {
  static const trace::DeviceMetrics kEmpty;
  return i < m.per_device.size() ? m.per_device[i] : kEmpty;
}

// The chaos mixed workload (mirrors test_chaos.cpp): 5 rounds x 8
// chained commands across L1 / L2 / L3 / systolic / composed MDAG on a
// 3-device pool, optionally with every fault mode armed.
struct TracedRun {
  host::ExecStats stats;
  std::shared_ptr<trace::Recorder> rec;
};

TracedRun run_traced_chaos(int workers, bool with_faults,
                           trace::Options topts = {}) {
  const std::int64_t vn = 96;
  const std::int64_t gr = 40, gc = vn;
  const std::int64_t m3 = 32, n3 = 28, k3 = 24;
  const std::int64_t ms = 24, ns = 20, ks = 16;
  const std::int64_t an = 24, am = 18;

  host::DevicePool pool(3);
  host::Context ctx(pool, stream::Mode::Cycle, workers);
  ctx.config().verification = verify::Options::always().in_grid();
  stream::Watchdog wd;
  wd.max_cycles = 1u << 20;
  ctx.set_watchdog(wd);
  ctx.set_retry_policy(relaxed_retry());
  TracedRun out;
  out.rec = ctx.tracing(topts);
  if (with_faults) {
    host::FaultConfig faults;
    faults.seed = 23;
    faults.launch_fail_rate = 0.02;
    faults.corrupt_rate = 0.02;
    faults.wedge_rate = 0.004;
    faults.silent_corrupt_rate = 0.02;
    faults.channel_corrupt_rate = 0.01;
    faults.pe_fault_rate = 0.06;
    faults.device_fault_window.device = 1;
    faults.device_fault_window.begin = 8;
    faults.device_fault_window.end = 24;
    faults.device_fault_window.multiplier = 25.0;
    pool.inject_faults(faults);
  }

  Workload wl(60);
  host::Buffer<float> v0(pool.device(0), vn, 0), v1(pool.device(0), vn, 1);
  host::Buffer<float> ga(pool.device(0), gr * gc, 0);
  host::Buffer<float> gy(pool.device(0), gr, 2);
  host::Buffer<float> ma(pool.device(1), m3 * k3, 0);
  host::Buffer<float> mb(pool.device(1), k3 * n3, 1);
  host::Buffer<float> mc(pool.device(1), m3 * n3, 2);
  host::Buffer<float> sa(pool.device(2), ms * ks, 0);
  host::Buffer<float> sb(pool.device(2), ks * ns, 1);
  host::Buffer<float> sc(pool.device(2), ms * ns, 2);
  host::Buffer<float> aa(pool.device(2), an * am, 0);
  host::Buffer<float> ax(pool.device(2), am, 1);
  host::Buffer<float> ay(pool.device(2), am, 2);
  v0.write(wl.vector<float>(vn));
  v1.write(wl.vector<float>(vn));
  ga.write(wl.matrix<float>(gr, gc));
  gy.write(std::vector<float>(static_cast<std::size_t>(gr), 0.0f));
  ma.write(wl.matrix<float>(m3, k3));
  mb.write(wl.matrix<float>(k3, n3));
  mc.write(wl.matrix<float>(m3, n3));
  sa.write(wl.matrix<float>(ms, ks));
  sb.write(wl.matrix<float>(ks, ns));
  sc.write(std::vector<float>(static_cast<std::size_t>(ms * ns), 0.0f));
  aa.write(wl.matrix<float>(an, am));
  ax.write(wl.vector<float>(am));
  ay.write(std::vector<float>(static_cast<std::size_t>(am), 0.0f));

  for (int round = 0; round < 5; ++round) {
    ctx.scal_async<float>(vn, 1.01f, v0, 1);
    ctx.axpy_async<float>(vn, 0.5f, v0, 1, v1, 1);
    ctx.gemv_async<float>(Transpose::None, gr, gc, 1.0f, ga, v1, 1, 0.5f, gy,
                          1);
    ctx.gemm_async<float>(Transpose::None, Transpose::None, m3, n3, k3, 1.0f,
                          ma, mb, 0.5f, mc);
    ctx.gemm_systolic_async<float>(ms, ns, ks, sa, sb, sc);
    apps::atax_composed_async<float>(ctx, an, am, aa, ax, ay);
  }
  ctx.finish();
  out.stats = ctx.exec_stats();
  return out;
}

// The exact reconciliation contract between the trace counters and the
// runtime's own ExecStats / per-device ledgers: every span the runtime
// accounts for must appear in the trace exactly once, and vice versa.
void expect_trace_reconciles(const trace::MetricsSnapshot& m,
                             const host::ExecStats& stats) {
  EXPECT_EQ(m.completes, stats.executed);
  EXPECT_EQ(m.enqueued, stats.executed);  // everything enqueued completed
  EXPECT_EQ(m.degraded, stats.degraded);
  EXPECT_EQ(m.retries, stats.retries);
  EXPECT_EQ(m.verify_checks, stats.verified);
  EXPECT_EQ(m.verify_rejects, stats.verify_failures);
  EXPECT_EQ(m.migrations, stats.migrations);
  EXPECT_EQ(m.migrated_bytes, stats.migrated_bytes);
  EXPECT_EQ(m.breaker_opens, stats.breaker_opens);
  EXPECT_EQ(m.breaker_readmissions, stats.breaker_readmissions);
  // No command failed terminally (so none was poisoned): every complete
  // took exactly 1 + its retries attempts.
  EXPECT_EQ(m.failed, 0u);
  EXPECT_EQ(m.attempts, m.completes + m.retries);
  EXPECT_EQ(m.ok + m.degraded, m.completes);
  // Exact-counter invariants of the snapshot itself.
  EXPECT_EQ(m.kind(trace::EventKind::Attempt), m.attempts);
  EXPECT_EQ(m.kind(trace::EventKind::Complete), m.completes);
  EXPECT_EQ(m.kind(trace::EventKind::Retry), m.retries);
  EXPECT_EQ(m.attempt_wall_ns.count, m.attempts);
  EXPECT_EQ(m.command_cycles.count, m.completes);
  // Per-device ledgers: placements, verify verdicts, inbound migrations,
  // breaker history and probes, device by device.
  ASSERT_EQ(stats.per_device.size(), 3u);
  std::uint64_t probes = 0;
  for (std::size_t i = 0; i < stats.per_device.size(); ++i) {
    const host::PerDeviceStats& d = stats.per_device[i];
    const trace::DeviceMetrics& t = device_metric(m, i);
    EXPECT_EQ(t.placed, d.attempts) << "device " << i;
    EXPECT_EQ(t.verify_rejects, d.verify_rejects) << "device " << i;
    EXPECT_EQ(t.migrations_in, d.migrations_in) << "device " << i;
    EXPECT_EQ(t.migrated_bytes_in, d.migrated_bytes_in) << "device " << i;
    EXPECT_EQ(t.breaker_opens, d.breaker_opens) << "device " << i;
    EXPECT_EQ(t.breaker_readmissions, d.breaker_readmissions)
        << "device " << i;
    EXPECT_EQ(t.probes, d.probes) << "device " << i;
    probes += d.probes;
  }
  EXPECT_EQ(m.probes, probes);
}

TEST(Trace, OffByDefaultAndNearZeroDisarmedCost) {
  host::DevicePool pool(1);
  host::Context ctx(pool, stream::Mode::Cycle, 0);
  EXPECT_EQ(ctx.trace_recorder(), nullptr);
  EXPECT_EQ(trace::sink(), nullptr);
  // Emitting through the thread-local sink with tracing off is a no-op.
  trace::Event e;
  e.kind = trace::EventKind::Attempt;
  trace::emit(e);

  const std::int64_t n = 32;
  Workload wl(3);
  host::Buffer<float> x(pool.device(0), n, 0);
  x.write(wl.vector<float>(n));
  ctx.scal_async<float>(n, 2.0f, x, 1);
  ctx.finish();
  EXPECT_EQ(ctx.exec_stats().executed, 1u);
  EXPECT_EQ(ctx.trace_recorder(), nullptr);
}

TEST(Trace, StopTracingDisarmsNewCommands) {
  host::DevicePool pool(1);
  host::Context ctx(pool, stream::Mode::Cycle, 0);
  auto rec = ctx.tracing();
  const std::int64_t n = 16;
  Workload wl(4);
  host::Buffer<float> x(pool.device(0), n, 0);
  x.write(wl.vector<float>(n));
  ctx.scal_async<float>(n, 2.0f, x, 1);
  ctx.finish();
  const std::uint64_t recorded = rec->metrics().recorded;
  EXPECT_GT(recorded, 0u);
  ctx.stop_tracing();
  EXPECT_EQ(ctx.trace_recorder(), nullptr);
  ctx.scal_async<float>(n, 0.5f, x, 1);
  ctx.finish();
  // The old recorder stays valid but sees nothing new.
  EXPECT_EQ(rec->metrics().recorded, recorded);
}

TEST(Trace, EventNameTruncatesAndRoundTrips) {
  trace::Event e;
  e.set_name("short");
  EXPECT_EQ(e.name_view(), "short");
  e.set_name(std::string(80, 'x'));
  EXPECT_EQ(e.name_view().size(), sizeof(e.name) - 1);
}

TEST(Trace, RingWrapDropsOldestButCountersStayExact) {
  trace::Options opts;
  opts.ring_capacity = 64;
  opts.shards = 1;
  trace::Recorder rec(opts);
  for (int i = 0; i < 1000; ++i) {
    trace::Event e;
    e.kind = trace::EventKind::Attempt;
    e.seq = static_cast<std::uint64_t>(i);
    e.a = 100;
    rec.emit(e);
  }
  const trace::MetricsSnapshot m = rec.metrics();
  EXPECT_EQ(m.recorded, 1000u);
  EXPECT_EQ(m.dropped, 1000u - 64u);
  EXPECT_EQ(m.attempts, 1000u);  // exact despite the wrap
  EXPECT_EQ(m.attempt_wall_ns.count, 1000u);
  EXPECT_EQ(m.attempt_wall_ns.sum, 100000u);
  const std::vector<trace::Event> events = rec.events();
  ASSERT_EQ(events.size(), 64u);
  // Drop-oldest: the survivors are the newest 64, oldest-first.
  EXPECT_EQ(events.front().seq, 936u);
  EXPECT_EQ(events.back().seq, 999u);
}

TEST(Trace, SerialLifecycleSpansAndTwoClockModel) {
  host::DevicePool pool(1);
  host::Context ctx(pool, stream::Mode::Cycle, 0);
  ctx.config().verification = verify::Options::always();
  auto rec = ctx.tracing();

  const std::int64_t n = 48, gm = 20, gk = 16;
  Workload wl(9);
  host::Buffer<float> x(pool.device(0), n, 0), y(pool.device(0), n, 1);
  host::Buffer<float> a(pool.device(0), gm * gk, 0);
  host::Buffer<float> b(pool.device(0), gk * gm, 1);
  host::Buffer<float> c(pool.device(0), gm * gm, 2);
  x.write(wl.vector<float>(n));
  y.write(wl.vector<float>(n));
  a.write(wl.matrix<float>(gm, gk));
  b.write(wl.matrix<float>(gk, gm));
  c.write(std::vector<float>(static_cast<std::size_t>(gm * gm), 0.0f));

  ctx.scal_async<float>(n, 1.5f, x, 1);
  ctx.axpy_async<float>(n, 2.0f, x, 1, y, 1);
  ctx.gemm_async<float>(Transpose::None, Transpose::None, gm, gm, gk, 1.0f, a,
                        b, 0.0f, c);
  ctx.finish();
  const host::ExecStats stats = ctx.exec_stats();

  const trace::MetricsSnapshot m = rec->metrics();
  EXPECT_EQ(m.enqueued, 3u);
  EXPECT_EQ(m.completes, stats.executed);
  EXPECT_EQ(m.ok, 3u);
  EXPECT_EQ(m.attempts, 3u);
  EXPECT_EQ(m.retries, 0u);
  EXPECT_EQ(m.verify_checks, stats.verified);
  EXPECT_GT(m.verify_checks, 0u);
  EXPECT_EQ(m.verify_rejects, 0u);
  EXPECT_EQ(m.kind(trace::EventKind::DepsReady), 3u);
  EXPECT_EQ(m.dropped, 0u);
  EXPECT_EQ(device_metric(m, 0).placed, stats.per_device.at(0).attempts);

  // Event-level span structure: every command shows the full lifecycle,
  // labeled with its routine name, and attempts carry their placement.
  const std::vector<trace::Event> events = rec->events();
  std::set<std::string> labels;
  std::map<std::uint64_t, std::set<trace::EventKind>> kinds_by_seq;
  std::uint64_t max_finish_cycles = 0;
  for (const trace::Event& e : events) {
    if (e.kind == trace::EventKind::Enqueue) {
      labels.insert(std::string(e.name_view()));
    }
    if (e.seq != 0) kinds_by_seq[e.seq].insert(e.kind);
    if (e.kind == trace::EventKind::Complete) {
      EXPECT_EQ(e.flags, 2u);  // CommandState::Ok
      EXPECT_GE(e.b, e.a);     // finish_cycles >= start_cycles
      max_finish_cycles = std::max(max_finish_cycles, e.b);
    }
  }
  EXPECT_TRUE(labels.count("scal"));
  EXPECT_TRUE(labels.count("axpy"));
  EXPECT_TRUE(labels.count("gemm"));
  EXPECT_EQ(kinds_by_seq.size(), 3u);
  for (const auto& [seq, kinds] : kinds_by_seq) {
    EXPECT_TRUE(kinds.count(trace::EventKind::Enqueue)) << "seq " << seq;
    EXPECT_TRUE(kinds.count(trace::EventKind::DepsReady)) << "seq " << seq;
    EXPECT_TRUE(kinds.count(trace::EventKind::Placed)) << "seq " << seq;
    EXPECT_TRUE(kinds.count(trace::EventKind::Attempt)) << "seq " << seq;
    EXPECT_TRUE(kinds.count(trace::EventKind::Verify)) << "seq " << seq;
    EXPECT_TRUE(kinds.count(trace::EventKind::Complete)) << "seq " << seq;
  }
  // The two-clock model: the simulated-cycle axis of the Complete spans
  // ends exactly at the executor's critical-path makespan.
  EXPECT_EQ(max_finish_cycles, stats.makespan_cycles);
}

TEST(Trace, ChaosReconciliationSerial) {
  const TracedRun run = run_traced_chaos(0, true);
  EXPECT_GT(run.stats.retries, 0u);       // the soak exercised the ladder
  EXPECT_GE(run.stats.breaker_opens, 1u); // and the breakers
  expect_trace_reconciles(run.rec->metrics(), run.stats);
}

TEST(Trace, ChaosReconciliationConcurrent) {
  const TracedRun run = run_traced_chaos(4, true);
  EXPECT_GT(run.stats.retries, 0u);
  expect_trace_reconciles(run.rec->metrics(), run.stats);
}

TEST(Trace, CleanRunReconcilesToo) {
  const TracedRun run = run_traced_chaos(0, false);
  EXPECT_EQ(run.stats.retries, 0u);
  expect_trace_reconciles(run.rec->metrics(), run.stats);
}

TEST(Trace, EngineEventsRecordChannelGraphAndPeStats) {
  const TracedRun run = run_traced_chaos(0, false);
  const trace::MetricsSnapshot m = run.rec->metrics();
  // 5 composed-MDAG runs and 5 systolic GEMMs ran: channel summaries,
  // graph summaries and per-PE utilization must all be present.
  EXPECT_GT(m.kind(trace::EventKind::ChannelStats), 0u);
  EXPECT_GT(m.kind(trace::EventKind::GraphStats), 0u);
  EXPECT_GT(m.kind(trace::EventKind::PeStats), 0u);
  bool saw_pe_macs = false, saw_channel_peak = false, saw_graph_cycles = false;
  for (const trace::Event& e : run.rec->events()) {
    if (e.kind == trace::EventKind::PeStats && e.a > 0) saw_pe_macs = true;
    if (e.kind == trace::EventKind::ChannelStats) {
      EXPECT_FALSE(e.name_view().empty());
      EXPECT_GT(e.flags, 0u);  // capacity
      if (e.a > 0) saw_channel_peak = true;
    }
    if (e.kind == trace::EventKind::GraphStats && e.a > 0) {
      saw_graph_cycles = true;
    }
  }
  EXPECT_TRUE(saw_pe_macs);
  EXPECT_TRUE(saw_channel_peak);
  EXPECT_TRUE(saw_graph_cycles);
}

TEST(Trace, EngineEventsToggleOff) {
  trace::Options topts;
  topts.engine_events = false;
  const TracedRun run = run_traced_chaos(0, false, topts);
  const trace::MetricsSnapshot m = run.rec->metrics();
  EXPECT_EQ(m.kind(trace::EventKind::ChannelStats), 0u);
  EXPECT_EQ(m.kind(trace::EventKind::GraphStats), 0u);
  EXPECT_EQ(m.kind(trace::EventKind::PeStats), 0u);
  // Lifecycle spans still reconcile without the engine noise.
  expect_trace_reconciles(m, run.stats);
}

TEST(Trace, AdaptiveRateCounterSamples) {
  host::DevicePool pool(1);
  host::Context ctx(pool, stream::Mode::Cycle, 0);
  ctx.config().verification = verify::Options::sampled(1.0).adaptive();
  auto rec = ctx.tracing();
  const std::int64_t n = 32;
  Workload wl(5);
  host::Buffer<float> x(pool.device(0), n, 0);
  x.write(wl.vector<float>(n));
  for (int i = 0; i < 6; ++i) ctx.scal_async<float>(n, 1.01f, x, 1);
  ctx.finish();
  // Every clean check moves (decays) the live rate: one counter sample
  // per verification.
  const trace::MetricsSnapshot m = rec->metrics();
  EXPECT_GT(m.verify_checks, 0u);
  EXPECT_EQ(m.kind(trace::EventKind::RateSample), m.verify_checks);
}

// --- Chrome trace-event export -------------------------------------------

// Validates one exported document against the trace-event schema that
// chrome://tracing / Perfetto actually require: a JSON object with a
// traceEvents array whose entries carry ph/pid(/ts, /dur for X, cat+id
// for async b/e), with async begin/end strictly paired per id.
void expect_chrome_schema(const codegen::Json& doc) {
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.contains("traceEvents"));
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  ASSERT_TRUE(doc.contains("otherData"));
  EXPECT_GE(doc.at("otherData").at("recorded").as_number(), 1.0);

  const codegen::Json& events = doc.at("traceEvents");
  ASSERT_GT(events.size(), 0u);
  std::map<std::int64_t, std::int64_t> async_depth;  // id -> b minus e
  std::set<std::string> phases;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const codegen::Json& e = events.at(i);
    ASSERT_TRUE(e.is_object()) << "entry " << i;
    ASSERT_TRUE(e.contains("ph")) << "entry " << i;
    ASSERT_TRUE(e.contains("pid")) << "entry " << i;
    const std::string& ph = e.at("ph").as_string();
    phases.insert(ph);
    const std::int64_t pid = e.at("pid").as_int();
    EXPECT_TRUE(pid == 1 || pid == 2 || pid == 3) << "entry " << i;
    if (ph != "M") {
      ASSERT_TRUE(e.contains("ts")) << "entry " << i << " ph " << ph;
      ASSERT_TRUE(e.contains("name")) << "entry " << i;
    }
    if (ph == "X") {
      ASSERT_TRUE(e.contains("dur")) << "entry " << i;
      EXPECT_GE(e.at("dur").as_number(), 0.0);
    }
    if (ph == "b" || ph == "e") {
      ASSERT_TRUE(e.contains("cat")) << "entry " << i;
      ASSERT_TRUE(e.contains("id")) << "entry " << i;
      EXPECT_EQ(e.at("cat").as_string(), "command");
      async_depth[e.at("id").as_int()] += ph == "b" ? 1 : -1;
    }
    if (ph == "C") {
      ASSERT_TRUE(e.contains("args")) << "entry " << i;
    }
  }
  // Every async command span opened exactly once and closed exactly once.
  for (const auto& [id, depth] : async_depth) {
    EXPECT_EQ(depth, 0) << "unbalanced async span for command " << id;
  }
  // The tracks the walkthrough documents are all present.
  EXPECT_TRUE(phases.count("M"));
  EXPECT_TRUE(phases.count("b"));
  EXPECT_TRUE(phases.count("e"));
  EXPECT_TRUE(phases.count("X"));
}

TEST(Trace, ChromeJsonSchemaValidates) {
  const TracedRun run = run_traced_chaos(0, true);
  const std::string json = trace::chrome_json(*run.rec);
  const codegen::Json doc = codegen::Json::parse(json);
  expect_chrome_schema(doc);
  // The chaos run drove breakers and counters: counter tracks appear.
  bool saw_breaker_counter = false;
  const codegen::Json& events = doc.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const codegen::Json& e = events.at(i);
    if (e.at("ph").as_string() == "C" &&
        e.at("name").as_string().rfind("breaker[", 0) == 0) {
      saw_breaker_counter = true;
    }
  }
  EXPECT_TRUE(saw_breaker_counter);
}

TEST(Trace, ExportChromeWritesLoadableFile) {
  const TracedRun run = run_traced_chaos(0, false);
  const std::string path = testing::TempDir() + "fblas_trace_test.json";
  trace::export_chrome(*run.rec, path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const codegen::Json doc = codegen::Json::parse(ss.str());
  expect_chrome_schema(doc);
  std::remove(path.c_str());
  // Unwritable path: a named error, not silent truncation.
  EXPECT_THROW(trace::export_chrome(*run.rec, "/nonexistent-dir/t.json"),
               Error);
}

}  // namespace
}  // namespace fblas
