// Out-of-order host runtime tests: observable overlap of independent
// commands, RAW/WAR/WAW hazard ordering, bit-identical results between
// the serial and concurrent policies (including a randomized hazard
// fuzz), makespan accounting, event chaining and ConfigGuard capture.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <latch>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "refblas/level2.hpp"

namespace fblas::host {
namespace {

template <typename T>
Buffer<T> make_buffer(Device& dev, const std::vector<T>& host, int bank = 0) {
  Buffer<T> b(dev, static_cast<std::int64_t>(host.size()), bank);
  b.write(host);
  return b;
}

// --- Dependency tracking unit tests ------------------------------------

TEST(DepGraphHazards, DisjointSetsGetNoEdges) {
  DepGraph g;
  int a = 0, b = 0;
  const void* ra[] = {&a};
  const void* rb[] = {&b};
  EXPECT_TRUE(g.add(1, ra, ra).empty());
  EXPECT_TRUE(g.add(2, rb, rb).empty());
}

TEST(DepGraphHazards, DerivesRawWarWaw) {
  DepGraph g;
  int x = 0;
  const void* rx[] = {&x};
  std::span<const void* const> none;
  EXPECT_TRUE(g.add(1, none, rx).empty());           // write x
  EXPECT_EQ(g.add(2, rx, none),                      // read x: RAW on 1
            (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(g.add(3, none, rx),                      // write x: WAW 1, WAR 2
            (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(g.add(4, rx, none),                      // read x: RAW on 3
            (std::vector<std::uint64_t>{3}));
}

TEST(DepGraphHazards, BarrierOrdersAgainstEverything) {
  DepGraph g;
  int a = 0, b = 0;
  const void* ra[] = {&a};
  const void* rb[] = {&b};
  std::span<const void* const> none;
  g.add(1, ra, ra);
  g.add(2, rb, rb);
  // The barrier must wait for both earlier commands...
  EXPECT_EQ(g.add(3, none, none, /*barrier=*/true),
            (std::vector<std::uint64_t>{1, 2}));
  // ...and later commands must wait for the barrier.
  const auto deps = g.add(4, ra, ra);
  EXPECT_NE(std::find(deps.begin(), deps.end(), 3u), deps.end());
}

// --- Observable concurrency --------------------------------------------

TEST(ConcurrentExec, IndependentCommandsOverlap) {
  Device dev;
  Context ctx(dev, stream::Mode::Functional, /*workers=*/4);
  // Two commands on disjoint resources rendezvous on a latch: the test
  // only completes if both are in flight at once.
  int a = 0, b = 0;
  std::latch both{2};
  auto body = [&both] {
    both.count_down();
    both.wait();
  };
  Command ca;
  ca.reads = {&a};
  ca.writes = {&a};
  ca.work = body;
  Command cb;
  cb.reads = {&b};
  cb.writes = {&b};
  cb.work = body;
  ctx.enqueue(std::move(ca));
  ctx.enqueue(std::move(cb));
  ctx.finish();
  EXPECT_GE(ctx.exec_stats().max_concurrent, 2);
  EXPECT_EQ(ctx.exec_stats().executed, 2u);
}

TEST(ConcurrentExec, ConflictingCommandsNeverOverlap) {
  Device dev;
  Context ctx(dev, stream::Mode::Functional, /*workers=*/4);
  int x = 0;
  std::atomic<int> in_flight{0};
  std::atomic<bool> overlapped{false};
  for (int i = 0; i < 8; ++i) {
    Command c;
    c.reads = {&x};
    c.writes = {&x};
    c.work = [&] {
      if (in_flight.fetch_add(1) != 0) overlapped = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      in_flight.fetch_sub(1);
    };
    ctx.enqueue(std::move(c));
  }
  ctx.finish();
  EXPECT_FALSE(overlapped.load());
}

TEST(ConcurrentExec, SerialPolicyStillDefersUntilWaited) {
  Device dev;
  Context ctx(dev);  // workers = 0: the paper's lazy in-order queue
  EXPECT_EQ(ctx.workers(), 0);
  Workload wl(71);
  auto x = make_buffer(dev, wl.vector<float>(64));
  Event e = ctx.scal_async<float>(64, 2.0f, x, 1);
  EXPECT_FALSE(e.done());
  e.wait();
  EXPECT_TRUE(e.done());
  EXPECT_TRUE(ctx.idle());
}

// --- Hazard chains are bit-identical to the serial schedule -------------

TEST(HazardOrdering, RawChainSeesWriterResult) {
  Device dev;
  for (int round = 0; round < 10; ++round) {
    Context ctx(dev, stream::Mode::Functional, /*workers=*/4);
    Workload wl(100 + round);
    const auto hx = wl.vector<float>(256);
    auto x = make_buffer(dev, hx, 0);
    auto y = make_buffer(dev, std::vector<float>(256, 0.0f), 1);
    ctx.scal_async<float>(256, 2.0f, x, 1);
    ctx.copy_async<float>(256, x, 1, y, 1);  // RAW on x
    ctx.finish();
    const auto out = y.to_host();
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], 2.0f * hx[i]) << "round " << round << " i " << i;
    }
  }
}

TEST(HazardOrdering, WarReaderSeesOldContents) {
  Device dev;
  for (int round = 0; round < 10; ++round) {
    Context ctx(dev, stream::Mode::Functional, /*workers=*/4);
    Workload wl(200 + round);
    const auto hx = wl.vector<float>(256);
    const auto hy = wl.vector<float>(256);
    auto x = make_buffer(dev, hx, 0);
    auto y = make_buffer(dev, hy, 1);
    float expected = 0;
    for (int i = 0; i < 256; ++i) expected += hx[i] * hy[i];
    float r = -1;
    ctx.dot_async<float>(256, x, 1, y, 1, &r);
    ctx.scal_async<float>(256, 3.0f, x, 1);  // WAR on x
    ctx.finish();
    ASSERT_NEAR(r, expected, 1e-2f) << "round " << round;
  }
}

TEST(HazardOrdering, WawKeepsProgramOrder) {
  Device dev;
  for (int round = 0; round < 10; ++round) {
    Context ctx(dev, stream::Mode::Functional, /*workers=*/4);
    Workload wl(300 + round);
    const auto ha = wl.vector<float>(256);
    const auto hb = wl.vector<float>(256);
    auto a = make_buffer(dev, ha, 0);
    auto b = make_buffer(dev, hb, 1);
    auto c = make_buffer(dev, std::vector<float>(256, 0.0f), 2);
    ctx.copy_async<float>(256, a, 1, c, 1);
    ctx.copy_async<float>(256, b, 1, c, 1);  // WAW on c
    ctx.finish();
    ASSERT_EQ(c.to_host(), hb) << "round " << round;
  }
}

// Randomized hazard fuzz: a long stream of commands with overlapping
// read/write sets must produce bit-identical state under the serial and
// concurrent policies.
TEST(HazardOrdering, RandomizedFuzzMatchesSerial) {
  constexpr int kBuffers = 6;
  constexpr int kCommands = 200;
  constexpr std::int64_t kN = 64;

  struct Op {
    int kind;  // 0 scal, 1 axpy, 2 copy, 3 dot
    int src;
    int dst;
    float alpha;
  };
  std::vector<Op> ops;
  std::mt19937 rng(20260806);
  std::uniform_int_distribution<int> kind(0, 3);
  std::uniform_int_distribution<int> buf(0, kBuffers - 1);
  std::uniform_real_distribution<float> scale(0.5f, 1.5f);
  for (int i = 0; i < kCommands; ++i) {
    ops.push_back({kind(rng), buf(rng), buf(rng), scale(rng)});
  }

  auto run = [&](int workers, std::vector<std::vector<float>>& out,
                 std::vector<float>& dots) {
    Device dev;
    Context ctx(dev, stream::Mode::Functional, workers);
    Workload wl(424242);
    std::vector<Buffer<float>> bufs;
    for (int i = 0; i < kBuffers; ++i) {
      bufs.push_back(make_buffer(dev, wl.vector<float>(kN), i % 4));
    }
    dots.assign(ops.size(), 0.0f);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const Op& op = ops[i];
      switch (op.kind) {
        case 0:
          ctx.scal_async<float>(kN, op.alpha, bufs[op.dst], 1);
          break;
        case 1:
          if (op.src != op.dst) {
            ctx.axpy_async<float>(kN, op.alpha, bufs[op.src], 1,
                                  bufs[op.dst], 1);
          }
          break;
        case 2:
          if (op.src != op.dst) {
            ctx.copy_async<float>(kN, bufs[op.src], 1, bufs[op.dst], 1);
          }
          break;
        case 3:
          ctx.dot_async<float>(kN, bufs[op.src], 1, bufs[op.dst], 1,
                               &dots[i]);
          break;
      }
    }
    ctx.finish();
    out.clear();
    for (auto& b : bufs) out.push_back(b.to_host());
  };

  std::vector<std::vector<float>> serial_state, conc_state;
  std::vector<float> serial_dots, conc_dots;
  run(0, serial_state, serial_dots);
  run(4, conc_state, conc_dots);
  // Conflicting commands retain program order, so results must be
  // bit-identical, not merely close.
  EXPECT_EQ(serial_state, conc_state);
  EXPECT_EQ(serial_dots, conc_dots);
}

// --- Cycle accounting ---------------------------------------------------

TEST(Makespan, IndependentCommandsOverlapInDeviceTime) {
  Device dev;
  Context ctx(dev, stream::Mode::Cycle, /*workers=*/4);
  Workload wl(55);
  const std::int64_t rows = 64, cols = 64;
  auto a = make_buffer(dev, wl.matrix<float>(rows, cols), 0);
  std::vector<Buffer<float>> xs, ys;
  for (int i = 0; i < 4; ++i) {
    xs.push_back(make_buffer(dev, wl.vector<float>(cols), 1));
    ys.push_back(make_buffer(dev, std::vector<float>(rows, 0.0f), 2));
  }
  for (int i = 0; i < 4; ++i) {
    ctx.gemv_async<float>(Transpose::None, rows, cols, 1.0f, a, xs[i], 1,
                          0.0f, ys[i], 1);
  }
  ctx.finish();
  EXPECT_GT(ctx.makespan_cycles(), 0u);
  EXPECT_LT(ctx.makespan_cycles(), ctx.total_cycles());
  // Four equal-size independent GEMVs: the critical path is one GEMV.
  EXPECT_NEAR(static_cast<double>(ctx.makespan_cycles()),
              static_cast<double>(ctx.total_cycles()) / 4.0,
              0.05 * static_cast<double>(ctx.total_cycles()));
}

TEST(Makespan, DependentChainMatchesTotal) {
  Device dev;
  Context ctx(dev, stream::Mode::Cycle, /*workers=*/4);
  Workload wl(56);
  auto x = make_buffer(dev, wl.vector<float>(4096), 0);
  for (int i = 0; i < 4; ++i) {
    ctx.scal_async<float>(4096, 1.001f, x, 1);  // WAW/RAW chain on x
  }
  ctx.finish();
  EXPECT_EQ(ctx.makespan_cycles(), ctx.total_cycles());
}

// --- Event API ----------------------------------------------------------

TEST(EventApi, DefaultConstructedIsCompletedNoOp) {
  Event e;
  EXPECT_TRUE(e.done());
  e.wait();  // must not crash
}

TEST(EventApi, WaitAllDrainsMixedEvents) {
  Device dev;
  Context ctx(dev);
  Workload wl(57);
  auto x = make_buffer(dev, wl.vector<float>(64), 0);
  auto y = make_buffer(dev, wl.vector<float>(64), 1);
  std::vector<Event> events;
  events.push_back(ctx.scal_async<float>(64, 2.0f, x, 1));
  events.push_back(Event());  // default events are fine in the batch
  events.push_back(ctx.scal_async<float>(64, 2.0f, y, 1));
  Event::wait_all(events);
  for (Event& e : events) EXPECT_TRUE(e.done());
  EXPECT_TRUE(ctx.idle());
}

TEST(EventApi, EnqueueAfterChainsExplicitly) {
  Device dev;
  Context ctx(dev, stream::Mode::Functional, /*workers=*/4);
  std::atomic<bool> first_done{false};
  int a = 0, b = 0;
  Command ca;
  ca.reads = {&a};
  ca.writes = {&a};
  ca.work = [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    first_done = true;
  };
  Event ea = ctx.enqueue(std::move(ca));
  // Disjoint resources: only the explicit `after` edge orders them.
  bool saw_first = false;
  Command cb;
  cb.reads = {&b};
  cb.writes = {&b};
  cb.after = {ea};
  cb.work = [&] { saw_first = first_done.load(); };
  ctx.enqueue(std::move(cb)).wait();
  EXPECT_TRUE(saw_first);
}

TEST(EventApi, UntypedEnqueueAfterOverloadRuns) {
  Device dev;
  Context ctx(dev);
  int order = 0;
  Event a = ctx.enqueue([&] { order = order * 10 + 1; });
  std::vector<Event> after{a};
  Event b = ctx.enqueue([&] { order = order * 10 + 2; },
                        std::span<const Event>(after));
  b.wait();
  EXPECT_EQ(order, 12);
}

// --- Exceptions ---------------------------------------------------------

TEST(ExceptionPropagation, ConcurrentWaitRethrows) {
  Device dev;
  Context ctx(dev, stream::Mode::Functional, /*workers=*/2);
  Workload wl(58);
  auto a = make_buffer(dev, wl.vector<float>(16), 0);
  auto b = make_buffer(dev, wl.vector<float>(16), 1);
  auto c = make_buffer(dev, wl.vector<float>(16), 2);
  // Batch of 4x4 problems needs 4*16 elements; 16 is too small.
  Event e = ctx.gemm_batched_async<float>(4, 4, 1.0f, a, b, c);
  EXPECT_THROW(e.wait(), Error);
  ctx.finish();  // error already consumed; finish is clean
}

TEST(ExceptionPropagation, SerialWaitRethrows) {
  Device dev;
  Context ctx(dev);
  Workload wl(59);
  auto a = make_buffer(dev, wl.vector<float>(16), 0);
  auto b = make_buffer(dev, wl.vector<float>(16), 1);
  auto c = make_buffer(dev, wl.vector<float>(16), 2);
  EXPECT_THROW(ctx.gemm_batched<float>(4, 4, 1.0f, a, b, c), Error);
}

// --- Config capture and ConfigGuard -------------------------------------

TEST(ConfigCapture, CommandsUseConfigFromEnqueueTime) {
  // Two serial cycle-mode contexts: one enqueues under a width-4 guard and
  // mutates the config before the lazy execution happens; the other just
  // runs with width 4. Cycle counts must match: the command captured the
  // knobs when it was enqueued, not when it ran.
  Workload wl(60);
  const auto hx = wl.vector<float>(4096);

  Device dev_a;
  Context guarded(dev_a, stream::Mode::Cycle);
  auto xa = make_buffer(dev_a, hx, 0);
  Event e;
  {
    RoutineConfig narrow = guarded.config();
    narrow.width = 4;
    ConfigGuard g = guarded.with(narrow);
    e = guarded.scal_async<float>(4096, 2.0f, xa, 1);
  }
  guarded.config().width = 64;  // must not affect the enqueued command
  e.wait();

  Device dev_b;
  Context reference(dev_b, stream::Mode::Cycle);
  auto xb = make_buffer(dev_b, hx, 0);
  reference.config().width = 4;
  reference.scal<float>(4096, 2.0f, xb);

  EXPECT_EQ(guarded.last_cycles(), reference.last_cycles());
  EXPECT_EQ(xa.to_host(), xb.to_host());
}

TEST(ConfigCapture, GuardRestoresOnScopeExit) {
  Device dev;
  Context ctx(dev);
  const int before = ctx.config().width;
  {
    RoutineConfig cfg = ctx.config();
    cfg.width = 2;
    ConfigGuard g = ctx.with(cfg);
    EXPECT_EQ(ctx.config().width, 2);
  }
  EXPECT_EQ(ctx.config().width, before);
}

TEST(ConfigCapture, InlineWithOverride) {
  Device dev;
  Context ctx(dev, stream::Mode::Cycle);
  Workload wl(61);
  auto x = make_buffer(dev, wl.vector<float>(4096), 0);
  const int before = ctx.config().width;
  RoutineConfig wide = ctx.config();
  wide.width = 32;
  ctx.with(wide)->scal<float>(4096, 2.0f, x);
  const std::uint64_t wide_cycles = ctx.last_cycles();
  EXPECT_EQ(ctx.config().width, before);
  RoutineConfig narrow = ctx.config();
  narrow.width = 4;
  ctx.with(narrow)->scal<float>(4096, 2.0f, x);
  EXPECT_GT(ctx.last_cycles(), wide_cycles);
}

// --- Nested library calls (SYMV -> GEMV) under the concurrent policy ----

TEST(NestedCommands, SymvRunsInlineUnderWorkers) {
  Device dev;
  Context ctx(dev, stream::Mode::Functional, /*workers=*/4);
  Workload wl(62);
  const std::int64_t n = 32;
  auto ha = wl.matrix<float>(n, n);
  const auto hx = wl.vector<float>(n);
  const auto hy = wl.vector<float>(n);
  // Symmetrize the reference operand.
  MatrixView<float> A(ha.data(), n, n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < i; ++j) A(j, i) = A(i, j);
  }
  auto a = make_buffer(dev, ha, 0);
  auto x = make_buffer(dev, hx, 1);
  auto y = make_buffer(dev, hy, 2);
  ctx.symv<float>(Uplo::Lower, n, 1.5f, a, x, 0.5f, y);

  std::vector<float> expect = hy;
  ref::gemv<float>(Transpose::None, 1.5f,
                   MatrixView<const float>(ha.data(), n, n),
                   VectorView<const float>(hx.data(), n), 0.5f,
                   VectorView<float>(expect.data(), n));
  const auto got = y.to_host();
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[static_cast<std::size_t>(i)],
                expect[static_cast<std::size_t>(i)], 1e-3f);
  }
  EXPECT_TRUE(ctx.idle());
}

// --- Worker-pool exception robustness -----------------------------------

TEST(ExceptionStress, RandomThrowsIn200CommandDagFailDeterministically) {
  // ~10% of a 200-command hazard-laden DAG throw mid-body. Requirements:
  // the drain loop terminates (wait_all never hangs on a failed graph),
  // dependents of a failed command are skipped with a deterministic
  // "dependency failed" error, and the full per-command outcome vector is
  // identical across the serial policy and repeated worker-pool runs.
  constexpr int kCommands = 200;
  constexpr int kResources = 12;

  struct Outcome {
    std::vector<std::string> failures;  // "seq: message" for failed cmds
    int bodies_entered = 0;
    std::uint64_t executed = 0;
  };
  auto run = [&](int workers) {
    Device dev;
    Context ctx(dev, stream::Mode::Functional, workers);
    std::array<int, kResources> res{};
    std::mt19937 rng(1234);  // same seed -> same DAG and same throw set
    std::atomic<int> bodies{0};
    std::vector<Event> events;
    events.reserve(kCommands);
    for (int i = 0; i < kCommands; ++i) {
      Command c;
      c.reads = {&res[rng() % kResources], &res[rng() % kResources]};
      c.writes = {&res[rng() % kResources]};
      const bool throws = rng() % 10 == 0;
      c.work = [&bodies, throws, i] {
        bodies.fetch_add(1);
        if (throws) {
          throw std::runtime_error("injected throw in command body " +
                                   std::to_string(i));
        }
      };
      events.push_back(ctx.enqueue(std::move(c)));
    }
    // Drain: wait_all rethrows one recorded error per call (consuming
    // it); with every command completed -- failed or not -- this loop is
    // bounded and must terminate instead of hanging.
    int caught = 0;
    for (;;) {
      try {
        ctx.finish();
        break;
      } catch (const std::exception&) {
        if (++caught > kCommands) {
          ADD_FAILURE() << "drain loop did not converge";
          break;
        }
      }
    }
    EXPECT_TRUE(ctx.idle());
    Outcome out;
    for (std::size_t i = 0; i < events.size(); ++i) {
      events[i].wait();  // must be a no-op now, never a hang
      const CommandStatus st = events[i].status();
      if (st.failed()) {
        out.failures.push_back(std::to_string(i) + ": " + st.message);
      } else {
        EXPECT_TRUE(st.ok());
      }
    }
    out.bodies_entered = bodies.load();
    out.executed = ctx.exec_stats().executed;
    return out;
  };

  const Outcome serial = run(0);
  const Outcome pool_a = run(4);
  const Outcome pool_b = run(4);
  EXPECT_EQ(serial.executed, static_cast<std::uint64_t>(kCommands));
  EXPECT_EQ(pool_a.executed, static_cast<std::uint64_t>(kCommands));
  EXPECT_FALSE(serial.failures.empty());
  // Throwers fail with their own message; poisoned dependents are skipped
  // deterministically (lowest-seq failed dependency), so the outcome
  // vectors match exactly across policies and across pool runs.
  EXPECT_EQ(serial.failures, pool_a.failures);
  EXPECT_EQ(pool_a.failures, pool_b.failures);
  EXPECT_EQ(serial.bodies_entered, pool_a.bodies_entered);
  bool saw_skip = false;
  for (const std::string& f : serial.failures) {
    if (f.find("skipped: dependency command") != std::string::npos) {
      saw_skip = true;
      EXPECT_NE(f.find("failed"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_skip);
}

}  // namespace
}  // namespace fblas::host
