// Property-based parameterized sweeps: every streaming routine must agree
// with the reference BLAS for arbitrary combinations of vectorization
// width, problem size and tile shape — including widths that do not
// divide the size, widths larger than the size, empty inputs, degenerate
// shapes, and both execution modes. Conservation invariants (every
// element pushed is popped) are asserted on every run.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "fblas/level1.hpp"
#include "fblas/level2.hpp"
#include "fblas/level3.hpp"
#include "refblas/level1.hpp"
#include "refblas/level2.hpp"
#include "refblas/level3.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

namespace fblas::core {
namespace {

using stream::Graph;
using stream::Mode;

/// Checks the conservation invariant on every channel of a finished graph.
void expect_balanced(const Graph& g) {
  for (const auto& ch : g.channels()) {
    EXPECT_EQ(ch->total_pushed(), ch->total_popped())
        << "channel '" << ch->name() << "' left " << ch->size()
        << " elements buffered";
    EXPECT_EQ(ch->size(), 0u);
  }
}

// ---- Level 1 sweep ---------------------------------------------------------

class Level1Sweep
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t, int, int>> {
 protected:
  int width() const { return std::get<0>(GetParam()); }
  std::int64_t size() const { return std::get<1>(GetParam()); }
  Mode mode() const {
    return std::get<2>(GetParam()) == 0 ? Mode::Functional : Mode::Cycle;
  }
  bool single() const { return std::get<3>(GetParam()) == 0; }
};

/// Runs the map-routine checks for one scalar type.
template <typename T>
void check_map_routines(int w, std::int64_t n, Mode mode) {
  Workload wl(1000 + w + static_cast<unsigned>(n));
  auto hx = wl.vector<T>(n);
  auto hy = wl.vector<T>(n);
  {
    Graph g(mode);
    auto& in = g.channel<T>("x", 64);
    auto& out = g.channel<T>("o", 64);
    std::vector<T> got;
    g.spawn("feed", stream::feed(hx, in));
    g.spawn("scal", scal<T>({w}, n, T(3.25), in, out));
    g.spawn("collect", stream::collect<T>(n, out, got));
    g.run();
    auto expect = hx;
    ref::scal<T>(T(3.25), VectorView<T>(expect.data(), n));
    EXPECT_EQ(got, expect);
  }
  {
    Graph g(mode);
    auto& cx = g.channel<T>("x", 64);
    auto& cy = g.channel<T>("y", 64);
    auto& out = g.channel<T>("o", 64);
    std::vector<T> got;
    g.spawn("fx", stream::feed(hx, cx));
    g.spawn("fy", stream::feed(hy, cy));
    g.spawn("axpy", axpy<T>({w}, n, T(-0.75), cx, cy, out));
    g.spawn("collect", stream::collect<T>(n, out, got));
    g.run();
    auto expect = hy;
    ref::axpy<T>(T(-0.75), VectorView<const T>(hx.data(), n),
                 VectorView<T>(expect.data(), n));
    EXPECT_EQ(got, expect);
  }
}

TEST_P(Level1Sweep, MapRoutinesMatchOracle) {
  if (single()) {
    check_map_routines<float>(width(), size(), mode());
  } else {
    check_map_routines<double>(width(), size(), mode());
  }
}

TEST_P(Level1Sweep, ReduceRoutinesMatchOracle) {
  const int w = width();
  const std::int64_t n = size();
  if (single()) {
    // The reduction sweep below runs in double; for the float axis a
    // reduced check with float tolerance keeps both precisions covered.
    Workload wl(2500 + w + static_cast<unsigned>(n));
    auto hx = wl.vector<float>(n);
    auto hy = wl.vector<float>(n);
    Graph g(mode());
    auto& cx = g.channel<float>("x", 64);
    auto& cy = g.channel<float>("y", 64);
    auto& res = g.channel<float>("r", 2);
    std::vector<float> got;
    g.spawn("fx", stream::feed(hx, cx));
    g.spawn("fy", stream::feed(hy, cy));
    g.spawn("dot", dot<float>({w}, n, cx, cy, res));
    g.spawn("collect", stream::collect<float>(1, res, got));
    g.run();
    expect_balanced(g);
    double expect = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      expect += static_cast<double>(hx[static_cast<std::size_t>(i)]) *
                hy[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(got[0], expect, 1e-3 * std::max<std::int64_t>(n, 1));
    return;
  }
  Workload wl(2000 + w + static_cast<unsigned>(n));
  auto hx = wl.vector<double>(n);
  auto hy = wl.vector<double>(n);
  // dot
  {
    Graph g(mode());
    auto& cx = g.channel<double>("x", 64);
    auto& cy = g.channel<double>("y", 64);
    auto& res = g.channel<double>("r", 2);
    std::vector<double> got;
    g.spawn("fx", stream::feed(hx, cx));
    g.spawn("fy", stream::feed(hy, cy));
    g.spawn("dot", dot<double>({w}, n, cx, cy, res));
    g.spawn("collect", stream::collect<double>(1, res, got));
    g.run();
    expect_balanced(g);
    const double expect = ref::dot<double>(
        VectorView<const double>(hx.data(), n),
        VectorView<const double>(hy.data(), n));
    EXPECT_NEAR(got[0], expect, 1e-9 * std::max<std::int64_t>(n, 1));
  }
  // asum + iamax
  {
    Graph g(mode());
    auto& c1 = g.channel<double>("x1", 64);
    auto& c2 = g.channel<double>("x2", 64);
    auto& r1 = g.channel<double>("r1", 2);
    auto& r2 = g.channel<std::int64_t>("r2", 2);
    std::vector<double> o1;
    std::vector<std::int64_t> o2;
    g.spawn("f1", stream::feed(hx, c1));
    g.spawn("f2", stream::feed(hx, c2));
    g.spawn("asum", asum<double>({w}, n, c1, r1));
    g.spawn("iamax", iamax<double>({w}, n, c2, r2));
    g.spawn("c1", stream::collect<double>(1, r1, o1));
    g.spawn("c2", stream::collect<std::int64_t>(1, r2, o2));
    g.run();
    expect_balanced(g);
    EXPECT_NEAR(o1[0],
                ref::asum<double>(VectorView<const double>(hx.data(), n)),
                1e-9 * std::max<std::int64_t>(n, 1));
    EXPECT_EQ(o2[0],
              ref::iamax<double>(VectorView<const double>(hx.data(), n)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsSizesModes, Level1Sweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 8, 16, 64),
                       ::testing::Values<std::int64_t>(0, 1, 2, 63, 64, 65,
                                                       1000),
                       ::testing::Values(0, 1), ::testing::Values(0, 1)),
    [](const ::testing::TestParamInfo<Level1Sweep::ParamType>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_" +
             (std::get<2>(info.param) == 0 ? "func" : "cycle") + "_" +
             (std::get<3>(info.param) == 0 ? "f32" : "f64");
    });

// ---- GEMV sweep ------------------------------------------------------------

struct GemvCase {
  std::int64_t rows, cols, tile_r, tile_c;
  int width;
};

class GemvSweep : public ::testing::TestWithParam<GemvCase> {};

TEST_P(GemvSweep, AllVariantsMatchOracle) {
  const GemvCase& c = GetParam();
  Workload wl(3000 + static_cast<unsigned>(c.rows * 31 + c.cols));
  auto a = wl.matrix<double>(c.rows, c.cols);
  for (Transpose tr : {Transpose::None, Transpose::Trans}) {
    const std::int64_t xl = tr == Transpose::None ? c.cols : c.rows;
    const std::int64_t yl = tr == Transpose::None ? c.rows : c.cols;
    auto x = wl.vector<double>(xl);
    auto y = wl.vector<double>(yl);
    auto expect = y;
    ref::gemv<double>(tr, 1.5, MatrixView<const double>(a.data(), c.rows,
                                                        c.cols),
                      VectorView<const double>(x.data(), xl), -0.5,
                      VectorView<double>(expect.data(), yl));
    for (MatrixTiling tiling :
         {MatrixTiling::TilesByRows, MatrixTiling::TilesByCols}) {
      GemvConfig cfg{tr, tiling, c.width, c.tile_r, c.tile_c};
      Graph g;
      auto& ca = g.channel<double>("A", 64);
      auto& cx = g.channel<double>("x", 64);
      auto& cy = g.channel<double>("y", 64);
      auto& out = g.channel<double>("o", 64);
      std::vector<double> got;
      g.spawn("read_A",
              stream::read_matrix<double>(
                  MatrixView<const double>(a.data(), c.rows, c.cols),
                  gemv_a_schedule(cfg), 1, c.width, ca));
      g.spawn("read_x", stream::read_vector<double>(
                            VectorView<const double>(x.data(), xl),
                            gemv_x_repeat(cfg, c.rows, c.cols), c.width, cx));
      g.spawn("read_y", stream::read_vector<double>(
                            VectorView<const double>(y.data(), yl), 1,
                            c.width, cy));
      g.spawn("gemv", gemv<double>(cfg, c.rows, c.cols, 1.5, -0.5, ca, cx,
                                   cy, out));
      g.spawn("collect", stream::collect<double>(yl, out, got));
      g.run();
      expect_balanced(g);
      EXPECT_LT(rel_error(got, expect), 1e-10)
          << "rows=" << c.rows << " cols=" << c.cols << " tr=" << int(tr)
          << " tiling=" << int(tiling);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemvSweep,
    ::testing::Values(GemvCase{1, 1, 1, 1, 1},      // scalar-sized
                      GemvCase{1, 17, 4, 4, 2},     // single row
                      GemvCase{17, 1, 4, 4, 2},     // single column
                      GemvCase{16, 16, 16, 16, 4},  // one exact tile
                      GemvCase{16, 16, 64, 64, 4},  // tile larger than A
                      GemvCase{30, 20, 7, 9, 5},    // nothing divides
                      GemvCase{64, 48, 16, 8, 16},  // rectangular tiles
                      GemvCase{23, 57, 23, 57, 8}), // tiles == shape
    [](const ::testing::TestParamInfo<GemvCase>& info) {
      const auto& c = info.param;
      return "r" + std::to_string(c.rows) + "c" + std::to_string(c.cols) +
             "_t" + std::to_string(c.tile_r) + "x" +
             std::to_string(c.tile_c) + "_w" + std::to_string(c.width);
    });

// ---- GEMM sweep ------------------------------------------------------------

struct GemmCase {
  std::int64_t m, n, k;
  int pr, pc;
  std::int64_t tr, tc;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, MatchesOracle) {
  const GemmCase& c = GetParam();
  Workload wl(4000 + static_cast<unsigned>(c.m * 7 + c.n * 3 + c.k));
  auto a = wl.matrix<double>(c.m, c.k);
  auto b = wl.matrix<double>(c.k, c.n);
  auto c0 = wl.matrix<double>(c.m, c.n);
  auto expect = c0;
  ref::gemm<double>(Transpose::None, Transpose::None, 2.0,
                    MatrixView<const double>(a.data(), c.m, c.k),
                    MatrixView<const double>(b.data(), c.k, c.n), 0.25,
                    MatrixView<double>(expect.data(), c.m, c.n));
  const GemmConfig cfg{c.pr, c.pc, c.tr, c.tc};
  Graph g;
  auto& ca = g.channel<double>("A", 256);
  auto& cb = g.channel<double>("B", 256);
  auto& cc = g.channel<double>("C", 256);
  auto& out = g.channel<double>("o", 256);
  std::vector<double> got(c.m * c.n);
  g.spawn("read_A", read_a_gemm<double>(
                        MatrixView<const double>(a.data(), c.m, c.k), cfg,
                        c.n, ca));
  g.spawn("read_B", read_b_gemm<double>(
                        MatrixView<const double>(b.data(), c.k, c.n), cfg,
                        c.m, cb));
  g.spawn("read_C",
          stream::read_matrix<double>(
              MatrixView<const double>(c0.data(), c.m, c.n),
              gemm_c_schedule(cfg), 1, cfg.pe_cols, cc));
  g.spawn("gemm",
          gemm<double>(cfg, c.m, c.n, c.k, 2.0, 0.25, ca, cb, cc, out));
  g.spawn("store",
          stream::write_matrix<double>(MatrixView<double>(got.data(), c.m,
                                                          c.n),
                                       gemm_c_schedule(cfg), cfg.pe_cols,
                                       out));
  g.run();
  expect_balanced(g);
  EXPECT_LT(rel_error(got, expect), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmCase{1, 1, 1, 1, 1, 1, 1},
                      GemmCase{1, 8, 8, 1, 2, 1, 4},
                      GemmCase{8, 1, 8, 2, 1, 4, 1},
                      GemmCase{8, 8, 1, 2, 2, 4, 4},
                      GemmCase{9, 7, 5, 2, 2, 4, 4},
                      GemmCase{16, 16, 16, 4, 2, 8, 8},
                      GemmCase{12, 20, 8, 3, 5, 6, 10},
                      GemmCase{32, 24, 16, 4, 4, 16, 8}),
    [](const ::testing::TestParamInfo<GemmCase>& info) {
      const auto& c = info.param;
      return "m" + std::to_string(c.m) + "n" + std::to_string(c.n) + "k" +
             std::to_string(c.k) + "_g" + std::to_string(c.pr) + "x" +
             std::to_string(c.pc) + "_t" + std::to_string(c.tr) + "x" +
             std::to_string(c.tc);
    });

// ---- Cross-width composition property --------------------------------------

TEST(CompositionProperty, MismatchedWidthsStillCorrect) {
  // Modules with different vectorization widths compose correctly: the
  // channels decouple their rates (backpressure handles the mismatch).
  Workload wl(5000);
  const std::int64_t n = 777;
  auto hx = wl.vector<double>(n);
  for (const auto mode : {Mode::Functional, Mode::Cycle}) {
    Graph g(mode);
    auto& a = g.channel<double>("a", 16);
    auto& b = g.channel<double>("b", 16);
    auto& c = g.channel<double>("c", 16);
    std::vector<double> got;
    g.spawn("feed", stream::feed(hx, a));
    g.spawn("wide", scal<double>({64}, n, 2.0, a, b));
    g.spawn("narrow", scal<double>({3}, n, 0.5, b, c));
    g.spawn("collect", stream::collect<double>(n, c, got));
    g.run();
    expect_balanced(g);
    EXPECT_EQ(got, hx);
  }
}

TEST(CompositionProperty, LongChainOfRoutines) {
  // A 6-deep chain: scal -> axpy -> rot -> swap -> copy -> dot, matching
  // the composed oracle computation.
  Workload wl(5001);
  const std::int64_t n = 256;
  auto hx = wl.vector<float>(n);
  auto hy = wl.vector<float>(n);
  Graph g;
  auto& cx0 = g.channel<float>("x0", 32);
  auto& cy0 = g.channel<float>("y0", 32);
  auto& cx1 = g.channel<float>("x1", 32);
  auto& cy1 = g.channel<float>("y1", 32);
  auto& cx2 = g.channel<float>("x2", 32);
  auto& cy2 = g.channel<float>("y2", 32);
  auto& cxb = g.channel<float>("xb", 32);
  auto& res = g.channel<float>("res", 2);
  std::vector<float> got;
  g.spawn("fx", stream::feed(hx, cx0));
  g.spawn("fy", stream::feed(hy, cy0));
  g.spawn("fxb", stream::feed(hx, cxb));
  g.spawn("scal", scal<float>({8}, n, 2.0f, cx0, cx1));
  g.spawn("axpy", axpy<float>({4}, n, 1.0f, cx1, cy0, cy1));   // y1 = 2x + y
  g.spawn("rot", rot<float>({16}, n, 0.6f, 0.8f, cy1, cxb, cx2, cy2));
  g.spawn("dot", dot<float>({8}, n, cx2, cy2, res));
  g.spawn("collect", stream::collect<float>(1, res, got));
  g.run();
  // Oracle.
  std::vector<float> ex = hx, ey = hy;
  ref::scal<float>(2.0f, VectorView<float>(ex.data(), n));
  ref::axpy<float>(1.0f, VectorView<const float>(ex.data(), n),
                   VectorView<float>(ey.data(), n));
  std::vector<float> rx = ey, ry = hx;
  ref::rot<float>(VectorView<float>(rx.data(), n),
                  VectorView<float>(ry.data(), n), 0.6f, 0.8f);
  const float expect = ref::dot<float>(VectorView<const float>(rx.data(), n),
                                       VectorView<const float>(ry.data(), n));
  EXPECT_NEAR(got[0], expect, 1e-2);
}

// ---- NRM2 extreme values ---------------------------------------------------
// The scaled sum-of-squares recurrence must survive the whole exponent
// range. Naive x^2 accumulation overflows to Inf near sqrt(max) and
// flushes denormal inputs to zero; both streaming and reference NRM2 use
// the same slassq recurrence, so they must agree exactly.

template <typename T>
T stream_nrm2(int w, const std::vector<T>& hx) {
  const std::int64_t n = static_cast<std::int64_t>(hx.size());
  Graph g;
  auto& cx = g.channel<T>("x", 64);
  auto& cr = g.channel<T>("r", 2);
  std::vector<T> got;
  g.spawn("feed", stream::feed(hx, cx));
  g.spawn("nrm2", nrm2<T>({w}, n, cx, cr));
  g.spawn("collect", stream::collect<T>(1, cr, got));
  g.run();
  expect_balanced(g);
  return got[0];
}

template <typename T>
void check_nrm2_extremes() {
  const T big = std::sqrt(std::numeric_limits<T>::max()) / T(2);
  const T tiny = std::numeric_limits<T>::denorm_min() * T(1 << 10);
  for (const int w : {1, 4, 16}) {
    {
      // 64 elements of ~sqrt(max)/2: the naive partial sum overflows
      // after four squares; the true norm (big * 8) is representable.
      const std::vector<T> hx(64, big);
      const T got = stream_nrm2<T>(w, hx);
      EXPECT_TRUE(std::isfinite(got));
      EXPECT_EQ(got, ref::nrm2<T>(VectorView<const T>(
                         hx.data(), static_cast<std::int64_t>(hx.size()))));
      EXPECT_EQ(got, big * T(8));
    }
    {
      // Denormal inputs: every square underflows to exactly zero, so the
      // naive norm is 0 — the scaled recurrence keeps the full value.
      const std::vector<T> hx(64, tiny);
      EXPECT_EQ(tiny * tiny, T(0));  // what naive accumulation would add
      const T got = stream_nrm2<T>(w, hx);
      EXPECT_GT(got, T(0));
      EXPECT_EQ(got, ref::nrm2<T>(VectorView<const T>(
                         hx.data(), static_cast<std::int64_t>(hx.size()))));
    }
    {
      // Mixed magnitudes spanning the exponent range: the largest value
      // dominates and the rescale path must not lose it.
      const std::vector<T> hx{T(1), tiny, big, T(-2), tiny, big};
      const T got = stream_nrm2<T>(w, hx);
      EXPECT_TRUE(std::isfinite(got));
      EXPECT_EQ(got, ref::nrm2<T>(VectorView<const T>(
                         hx.data(), static_cast<std::int64_t>(hx.size()))));
      EXPECT_GE(got, big);
    }
  }
}

TEST(Nrm2Extremes, FloatSurvivesOverflowAndDenormals) {
  check_nrm2_extremes<float>();
}

TEST(Nrm2Extremes, DoubleSurvivesOverflowAndDenormals) {
  check_nrm2_extremes<double>();
}

// ---- Adversarial inputs ----------------------------------------------------
// IEEE semantics under poisoned data: NaN/Inf must propagate (never be
// silently swallowed), empty vectors must be well-defined, and negative
// increments — unsupported by the streaming address generators — must be
// rejected loudly, not misread memory.

TEST(AdversarialInputs, NaNPropagatesThroughLevel1) {
  const std::int64_t n = 33;  // not a multiple of any width below
  Workload wl(6000);
  auto hx = wl.vector<float>(n);
  auto hy = wl.vector<float>(n);
  hx[7] = std::numeric_limits<float>::quiet_NaN();
  for (const int w : {1, 8}) {
    {
      Graph g;
      auto& cx = g.channel<float>("x", 32);
      auto& co = g.channel<float>("o", 32);
      std::vector<float> got;
      g.spawn("feed", stream::feed(hx, cx));
      g.spawn("scal", scal<float>({w}, n, 2.0f, cx, co));
      g.spawn("collect", stream::collect<float>(n, co, got));
      g.run();
      EXPECT_TRUE(std::isnan(got[7]));
      EXPECT_EQ(got[6], 2.0f * hx[6]);  // poison stays where it was
    }
    {
      Graph g;
      auto& cx = g.channel<float>("x", 32);
      auto& cy = g.channel<float>("y", 32);
      auto& cd = g.channel<float>("d", 2);
      std::vector<float> got;
      g.spawn("fx", stream::feed(hx, cx));
      g.spawn("fy", stream::feed(hy, cy));
      g.spawn("dot", dot<float>({w}, n, cx, cy, cd));
      g.spawn("collect", stream::collect<float>(1, cd, got));
      g.run();
      EXPECT_TRUE(std::isnan(got[0]));
    }
    {
      Graph g;
      auto& c1 = g.channel<float>("x1", 32);
      auto& c2 = g.channel<float>("x2", 32);
      auto& r1 = g.channel<float>("r1", 2);
      auto& r2 = g.channel<float>("r2", 2);
      std::vector<float> o1, o2;
      g.spawn("f1", stream::feed(hx, c1));
      g.spawn("f2", stream::feed(hx, c2));
      g.spawn("asum", asum<float>({w}, n, c1, r1));
      g.spawn("nrm2", nrm2<float>({w}, n, c2, r2));
      g.spawn("c1", stream::collect<float>(1, r1, o1));
      g.spawn("c2", stream::collect<float>(1, r2, o2));
      g.run();
      EXPECT_TRUE(std::isnan(o1[0]));
      EXPECT_TRUE(std::isnan(o2[0]));  // the scaled recurrence keeps NaN
    }
  }
}

TEST(AdversarialInputs, InfinityPropagatesThroughReductions) {
  const std::int64_t n = 17;
  Workload wl(6001);
  auto hx = wl.vector<double>(n);
  hx[5] = std::numeric_limits<double>::infinity();
  Graph g;
  auto& c1 = g.channel<double>("x1", 32);
  auto& c2 = g.channel<double>("x2", 32);
  auto& r1 = g.channel<double>("r1", 2);
  auto& r2 = g.channel<double>("r2", 2);
  std::vector<double> o1, o2;
  g.spawn("f1", stream::feed(hx, c1));
  g.spawn("f2", stream::feed(hx, c2));
  g.spawn("asum", asum<double>({4}, n, c1, r1));
  g.spawn("nrm2", nrm2<double>({4}, n, c2, r2));
  g.spawn("c1", stream::collect<double>(1, r1, o1));
  g.spawn("c2", stream::collect<double>(1, r2, o2));
  g.run();
  EXPECT_TRUE(std::isinf(o1[0]));
  EXPECT_TRUE(std::isinf(o2[0]));  // Inf survives the rescale path
}

TEST(AdversarialInputs, ZeroLengthVectorsAreWellDefined) {
  Graph g;
  auto& c1 = g.channel<double>("x1", 4);
  auto& c2 = g.channel<double>("x2", 4);
  auto& c3 = g.channel<double>("x3", 4);
  auto& r1 = g.channel<double>("r1", 2);
  auto& r2 = g.channel<double>("r2", 2);
  auto& r3 = g.channel<std::int64_t>("r3", 2);
  std::vector<double> o1, o2;
  std::vector<std::int64_t> o3;
  g.spawn("asum", asum<double>({8}, 0, c1, r1));
  g.spawn("nrm2", nrm2<double>({8}, 0, c2, r2));
  g.spawn("iamax", iamax<double>({8}, 0, c3, r3));
  g.spawn("c1", stream::collect<double>(1, r1, o1));
  g.spawn("c2", stream::collect<double>(1, r2, o2));
  g.spawn("c3", stream::collect<std::int64_t>(1, r3, o3));
  g.run();
  expect_balanced(g);
  EXPECT_EQ(o1[0], 0.0);
  EXPECT_EQ(o2[0], 0.0);
  EXPECT_EQ(o3[0], -1);
}

TEST(AdversarialInputs, NegativeIncrementsAreRejected) {
  // The streaming address generators only walk forward; a classical
  // BLAS negative increment must fail as a ConfigError at the view, and
  // surface as a Failed command through the host API — never as a
  // silent out-of-bounds walk.
  std::vector<float> v(8, 1.0f);
  EXPECT_THROW(VectorView<float>(v.data(), 8, -1), ConfigError);
  EXPECT_THROW(VectorView<float>(v.data(), 8, 0), ConfigError);

  host::Device dev;
  host::Context ctx(dev);
  host::Buffer<float> x(dev, 8, 0);
  x.write(v);
  host::Event e = ctx.scal_async<float>(8, 2.0f, x, -1);
  EXPECT_THROW(e.wait(), ConfigError);
  EXPECT_TRUE(e.status().failed());
  EXPECT_EQ(x.to_host(), v);  // operand untouched by the rejected command
}

}  // namespace
}  // namespace fblas::core
