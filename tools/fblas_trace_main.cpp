// fblas_trace — demo / smoke driver for the tracing layer.
//
// Runs a mixed fault-injected workload (L1 chain, GEMV, GEMM, systolic
// GEMM, composed MDAG on a 3-device pool with verification and retries
// armed) with tracing on, exports the Chrome trace-event JSON, then
// audits its own output: the file is re-parsed with the repo's JSON
// parser, schema-checked (the same invariants chrome://tracing needs),
// and the trace counters are reconciled exactly against the runtime's
// ExecStats. Exits non-zero on any mismatch, so CI runs it as a smoke
// test in every preset.
//
//   fblas_trace [--out trace.json] [--workers N] [--summarize]
//
// Load the exported file at chrome://tracing (or ui.perfetto.dev) to
// browse the spans; see README.md "Observability & tracing".
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "apps/atax.hpp"
#include "codegen/json.hpp"
#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "host/device_pool.hpp"
#include "trace/chrome.hpp"
#include "trace/trace.hpp"
#include "verify/options.hpp"

namespace {

using namespace fblas;

struct Cli {
  std::string out = "fblas_trace.json";
  int workers = 4;
  bool summarize = false;
};

int fail(const std::string& why) {
  std::fprintf(stderr, "fblas_trace: FAIL: %s\n", why.c_str());
  return EXIT_FAILURE;
}

struct RunOutput {
  host::ExecStats stats;
  std::shared_ptr<trace::Recorder> rec;
};

RunOutput run_workload(int workers) {
  const std::int64_t vn = 96;
  const std::int64_t gr = 40, gc = vn;
  const std::int64_t m3 = 32, n3 = 28, k3 = 24;
  const std::int64_t ms = 24, ns = 20, ks = 16;
  const std::int64_t an = 24, am = 18;

  host::DevicePool pool(3);
  host::Context ctx(pool, stream::Mode::Cycle, workers);
  ctx.config().verification = verify::Options::always().in_grid();
  stream::Watchdog wd;
  wd.max_cycles = 1u << 20;
  ctx.set_watchdog(wd);
  host::RetryPolicy retry;
  retry.max_retries = 8;
  retry.backoff = std::chrono::microseconds(0);
  retry.full_jitter = true;
  retry.jitter_seed = 7;
  ctx.set_retry_policy(retry);

  RunOutput out;
  out.rec = ctx.tracing();

  host::FaultConfig faults;
  faults.seed = 23;
  faults.launch_fail_rate = 0.02;
  faults.corrupt_rate = 0.02;
  faults.silent_corrupt_rate = 0.02;
  faults.channel_corrupt_rate = 0.01;
  faults.pe_fault_rate = 0.06;
  faults.device_fault_window.device = 1;
  faults.device_fault_window.begin = 8;
  faults.device_fault_window.end = 24;
  faults.device_fault_window.multiplier = 25.0;
  pool.inject_faults(faults);

  Workload wl(60);
  host::Buffer<float> v0(pool.device(0), vn, 0), v1(pool.device(0), vn, 1);
  host::Buffer<float> ga(pool.device(0), gr * gc, 0);
  host::Buffer<float> gy(pool.device(0), gr, 2);
  host::Buffer<float> ma(pool.device(1), m3 * k3, 0);
  host::Buffer<float> mb(pool.device(1), k3 * n3, 1);
  host::Buffer<float> mc(pool.device(1), m3 * n3, 2);
  host::Buffer<float> sa(pool.device(2), ms * ks, 0);
  host::Buffer<float> sb(pool.device(2), ks * ns, 1);
  host::Buffer<float> sc(pool.device(2), ms * ns, 2);
  host::Buffer<float> aa(pool.device(2), an * am, 0);
  host::Buffer<float> ax(pool.device(2), am, 1);
  host::Buffer<float> ay(pool.device(2), am, 2);
  v0.write(wl.vector<float>(vn));
  v1.write(wl.vector<float>(vn));
  ga.write(wl.matrix<float>(gr, gc));
  gy.write(std::vector<float>(static_cast<std::size_t>(gr), 0.0f));
  ma.write(wl.matrix<float>(m3, k3));
  mb.write(wl.matrix<float>(k3, n3));
  mc.write(wl.matrix<float>(m3, n3));
  sa.write(wl.matrix<float>(ms, ks));
  sb.write(wl.matrix<float>(ks, ns));
  sc.write(std::vector<float>(static_cast<std::size_t>(ms * ns), 0.0f));
  aa.write(wl.matrix<float>(an, am));
  ax.write(wl.vector<float>(am));
  ay.write(std::vector<float>(static_cast<std::size_t>(am), 0.0f));

  for (int round = 0; round < 5; ++round) {
    ctx.scal_async<float>(vn, 1.01f, v0, 1);
    ctx.axpy_async<float>(vn, 0.5f, v0, 1, v1, 1);
    ctx.gemv_async<float>(Transpose::None, gr, gc, 1.0f, ga, v1, 1, 0.5f, gy,
                          1);
    ctx.gemm_async<float>(Transpose::None, Transpose::None, m3, n3, k3, 1.0f,
                          ma, mb, 0.5f, mc);
    ctx.gemm_systolic_async<float>(ms, ns, ks, sa, sb, sc);
    apps::atax_composed_async<float>(ctx, an, am, aa, ax, ay);
  }
  ctx.finish();
  out.stats = ctx.exec_stats();
  return out;
}

/// Schema audit of the exported document: the invariants chrome://tracing
/// needs to load it. Returns an error string, empty on success.
std::string check_schema(const codegen::Json& doc) {
  if (!doc.is_object() || !doc.contains("traceEvents") ||
      !doc.at("traceEvents").is_array()) {
    return "document is not an object with a traceEvents array";
  }
  const codegen::Json& events = doc.at("traceEvents");
  if (events.size() == 0) return "traceEvents is empty";
  std::map<std::int64_t, std::int64_t> async_depth;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const codegen::Json& e = events.at(i);
    if (!e.is_object() || !e.contains("ph") || !e.contains("pid")) {
      return "entry " + std::to_string(i) + " lacks ph/pid";
    }
    const std::string& ph = e.at("ph").as_string();
    const std::int64_t pid = e.at("pid").as_int();
    if (pid < 1 || pid > 3) {
      return "entry " + std::to_string(i) + " has unknown pid";
    }
    if (ph != "M" && (!e.contains("ts") || !e.contains("name"))) {
      return "entry " + std::to_string(i) + " (ph " + ph + ") lacks ts/name";
    }
    if (ph == "X" && !e.contains("dur")) {
      return "entry " + std::to_string(i) + " is X without dur";
    }
    if (ph == "b" || ph == "e") {
      if (!e.contains("cat") || !e.contains("id")) {
        return "entry " + std::to_string(i) + " async span lacks cat/id";
      }
      async_depth[e.at("id").as_int()] += ph == "b" ? 1 : -1;
    }
  }
  for (const auto& [id, depth] : async_depth) {
    if (depth != 0) {
      return "unbalanced async span for command " + std::to_string(id);
    }
  }
  return {};
}

/// Exact reconciliation of the trace counters against ExecStats.
/// Returns an error string, empty on success.
std::string check_reconciliation(const trace::MetricsSnapshot& m,
                                 const host::ExecStats& s) {
  auto expect_eq = [](const char* what, std::uint64_t trace_v,
                      std::uint64_t stats_v) -> std::string {
    if (trace_v == stats_v) return {};
    std::ostringstream os;
    os << what << ": trace says " << trace_v << ", ExecStats says " << stats_v;
    return os.str();
  };
  std::string err;
  if (!(err = expect_eq("completes", m.completes, s.executed)).empty())
    return err;
  if (!(err = expect_eq("degraded", m.degraded, s.degraded)).empty())
    return err;
  if (!(err = expect_eq("retries", m.retries, s.retries)).empty()) return err;
  if (!(err = expect_eq("verify checks", m.verify_checks, s.verified)).empty())
    return err;
  if (!(err = expect_eq("verify rejects", m.verify_rejects,
                        s.verify_failures))
           .empty())
    return err;
  if (!(err = expect_eq("migrations", m.migrations, s.migrations)).empty())
    return err;
  if (!(err = expect_eq("migrated bytes", m.migrated_bytes,
                        s.migrated_bytes))
           .empty())
    return err;
  if (!(err = expect_eq("breaker opens", m.breaker_opens, s.breaker_opens))
           .empty())
    return err;
  if (!(err = expect_eq("breaker readmissions", m.breaker_readmissions,
                        s.breaker_readmissions))
           .empty())
    return err;
  for (std::size_t i = 0; i < s.per_device.size(); ++i) {
    const std::uint64_t placed =
        i < m.per_device.size() ? m.per_device[i].placed : 0;
    const std::string what = "device " + std::to_string(i) + " placements";
    if (!(err = expect_eq(what.c_str(), placed, s.per_device[i].attempts))
             .empty())
      return err;
  }
  return {};
}

void print_summary(const trace::MetricsSnapshot& m, const host::ExecStats& s,
                   const std::string& out_path) {
  std::printf("fblas_trace summary\n");
  std::printf("  events recorded   %llu (dropped from ring: %llu)\n",
              static_cast<unsigned long long>(m.recorded),
              static_cast<unsigned long long>(m.dropped));
  std::printf("  commands          %llu (ok %llu, degraded %llu, failed %llu)\n",
              static_cast<unsigned long long>(m.completes),
              static_cast<unsigned long long>(m.ok),
              static_cast<unsigned long long>(m.degraded),
              static_cast<unsigned long long>(m.failed));
  std::printf("  attempts          %llu (retries %llu)\n",
              static_cast<unsigned long long>(m.attempts),
              static_cast<unsigned long long>(m.retries));
  std::printf("  verify            %llu checks, %llu rejects\n",
              static_cast<unsigned long long>(m.verify_checks),
              static_cast<unsigned long long>(m.verify_rejects));
  std::printf("  fleet             %llu migrations (%llu bytes), "
              "%llu breaker opens, %llu readmissions, %llu probes\n",
              static_cast<unsigned long long>(m.migrations),
              static_cast<unsigned long long>(m.migrated_bytes),
              static_cast<unsigned long long>(m.breaker_opens),
              static_cast<unsigned long long>(m.breaker_readmissions),
              static_cast<unsigned long long>(m.probes));
  std::printf("  makespan          %llu simulated cycles\n",
              static_cast<unsigned long long>(s.makespan_cycles));
  for (std::size_t i = 0; i < m.per_device.size(); ++i) {
    const trace::DeviceMetrics& d = m.per_device[i];
    std::printf("  device %zu          %llu placed, %llu verify rejects, "
                "%llu migrations in\n",
                i, static_cast<unsigned long long>(d.placed),
                static_cast<unsigned long long>(d.verify_rejects),
                static_cast<unsigned long long>(d.migrations_in));
  }
  std::printf("  wrote %s — open it at chrome://tracing\n", out_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      cli.out = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      cli.workers = std::atoi(argv[++i]);
    } else if (arg == "--summarize") {
      cli.summarize = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: fblas_trace [--out trace.json] [--workers N] "
          "[--summarize]\n");
      return EXIT_SUCCESS;
    } else {
      return fail("unknown argument '" + arg + "' (try --help)");
    }
  }
  if (cli.workers < 0) return fail("--workers must be >= 0");

  try {
    const RunOutput run = run_workload(cli.workers);
    trace::export_chrome(*run.rec, cli.out);

    // Audit our own export: re-read, re-parse, schema-check, reconcile.
    std::ifstream in(cli.out, std::ios::binary);
    if (!in) return fail("cannot re-open '" + cli.out + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    const codegen::Json doc = codegen::Json::parse(ss.str());
    std::string err = check_schema(doc);
    if (!err.empty()) return fail("schema: " + err);
    const trace::MetricsSnapshot m = run.rec->metrics();
    err = check_reconciliation(m, run.stats);
    if (!err.empty()) return fail("reconciliation: " + err);

    if (cli.summarize) print_summary(m, run.stats, cli.out);
    std::printf("fblas_trace: OK (%llu events, schema valid, "
                "reconciled against ExecStats)\n",
                static_cast<unsigned long long>(m.recorded));
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}
