// fblas_codegen: the standalone code-generator tool (Sec. II-C). Reads a
// routines-specification JSON file and writes the OpenCL translation
// unit the HLS compiler would synthesize.
//
// Usage: fblas_codegen <spec.json> [output.cl] [--no-feasibility-check]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "codegen/emitter.hpp"

int main(int argc, char** argv) {
  using namespace fblas;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <spec.json> [output.cl] "
                 "[--no-feasibility-check]\n",
                 argv[0]);
    return 2;
  }
  bool check = true;
  const char* out_path = nullptr;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-feasibility-check") == 0) {
      check = false;
    } else {
      out_path = argv[i];
    }
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", argv[1]);
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const auto spec = codegen::parse_spec(text.str());
    const auto source = codegen::emit_file(spec, check);
    if (out_path != nullptr) {
      std::ofstream out(out_path);
      out << source;
      std::printf("wrote %zu bytes of OpenCL for %zu routine(s) to %s\n",
                  source.size(), spec.routines.size(), out_path);
    } else {
      std::fputs(source.c_str(), stdout);
    }
    // Print a synthesis summary per routine.
    const auto& dev = sim::device(spec.device);
    std::fprintf(stderr, "target: %s\n", std::string(dev.name).c_str());
    for (const auto& r : spec.routines) {
      const auto design = codegen::emit(r, dev, check);
      const auto res = sim::estimate_design(design.shape, dev);
      std::fprintf(stderr,
                   "  %-16s %zu kernels, est. %.0f ALMs, %.0f DSPs, "
                   "%.0f M20Ks (%.1f%% of device)\n",
                   r.user_name.c_str(), design.kernel_names.size(), res.alms,
                   res.dsps, res.m20ks,
                   100.0 * sim::utilization(res, dev));
    }
    return 0;
  } catch (const ParseError& e) {
    std::fprintf(stderr, "specification error: %s\n", e.what());
    return 1;
  } catch (const FitError& e) {
    std::fprintf(stderr, "feasibility error: %s\n", e.what());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
