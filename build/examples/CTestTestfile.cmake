# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_composition "/root/repo/build/examples/streaming_composition")
set_tests_properties(example_streaming_composition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_codegen_demo "/root/repo/build/examples/codegen_demo")
set_tests_properties(example_codegen_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_explorer "/root/repo/build/examples/design_explorer")
set_tests_properties(example_design_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_systolic_gemm "/root/repo/build/examples/systolic_gemm")
set_tests_properties(example_systolic_gemm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_conjugate_gradient "/root/repo/build/examples/conjugate_gradient" "96" "60")
set_tests_properties(example_conjugate_gradient PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
