# Empty dependencies file for streaming_composition.
# This may be replaced when dependencies are built.
