file(REMOVE_RECURSE
  "CMakeFiles/streaming_composition.dir/streaming_composition.cpp.o"
  "CMakeFiles/streaming_composition.dir/streaming_composition.cpp.o.d"
  "streaming_composition"
  "streaming_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
