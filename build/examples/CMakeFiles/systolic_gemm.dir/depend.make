# Empty dependencies file for systolic_gemm.
# This may be replaced when dependencies are built.
