file(REMOVE_RECURSE
  "CMakeFiles/systolic_gemm.dir/systolic_gemm.cpp.o"
  "CMakeFiles/systolic_gemm.dir/systolic_gemm.cpp.o.d"
  "systolic_gemm"
  "systolic_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systolic_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
