# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stream[1]_include.cmake")
include("/root/repo/build/tests/test_refblas[1]_include.cmake")
include("/root/repo/build/tests/test_fblas_level1[1]_include.cmake")
include("/root/repo/build/tests/test_fblas_level2[1]_include.cmake")
include("/root/repo/build/tests/test_fblas_level3[1]_include.cmake")
include("/root/repo/build/tests/test_systolic[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mdag[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_auto_partition[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_batched[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_runner[1]_include.cmake")
