file(REMOVE_RECURSE
  "CMakeFiles/test_mdag.dir/test_mdag.cpp.o"
  "CMakeFiles/test_mdag.dir/test_mdag.cpp.o.d"
  "test_mdag"
  "test_mdag.pdb"
  "test_mdag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
