# Empty compiler generated dependencies file for test_mdag.
# This may be replaced when dependencies are built.
