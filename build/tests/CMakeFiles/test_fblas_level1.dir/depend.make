# Empty dependencies file for test_fblas_level1.
# This may be replaced when dependencies are built.
