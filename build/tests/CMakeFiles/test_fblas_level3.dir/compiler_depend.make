# Empty compiler generated dependencies file for test_fblas_level3.
# This may be replaced when dependencies are built.
