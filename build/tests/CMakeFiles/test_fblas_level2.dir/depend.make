# Empty dependencies file for test_fblas_level2.
# This may be replaced when dependencies are built.
