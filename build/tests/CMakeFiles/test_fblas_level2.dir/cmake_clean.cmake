file(REMOVE_RECURSE
  "CMakeFiles/test_fblas_level2.dir/test_fblas_level2.cpp.o"
  "CMakeFiles/test_fblas_level2.dir/test_fblas_level2.cpp.o.d"
  "test_fblas_level2"
  "test_fblas_level2.pdb"
  "test_fblas_level2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fblas_level2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
