# Empty dependencies file for test_auto_partition.
# This may be replaced when dependencies are built.
