file(REMOVE_RECURSE
  "CMakeFiles/test_auto_partition.dir/test_auto_partition.cpp.o"
  "CMakeFiles/test_auto_partition.dir/test_auto_partition.cpp.o.d"
  "test_auto_partition"
  "test_auto_partition.pdb"
  "test_auto_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auto_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
