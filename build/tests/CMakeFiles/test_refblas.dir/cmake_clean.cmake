file(REMOVE_RECURSE
  "CMakeFiles/test_refblas.dir/test_refblas.cpp.o"
  "CMakeFiles/test_refblas.dir/test_refblas.cpp.o.d"
  "test_refblas"
  "test_refblas.pdb"
  "test_refblas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refblas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
