# Empty compiler generated dependencies file for test_refblas.
# This may be replaced when dependencies are built.
