file(REMOVE_RECURSE
  "CMakeFiles/fig10_gemv.dir/bench/fig10_gemv.cpp.o"
  "CMakeFiles/fig10_gemv.dir/bench/fig10_gemv.cpp.o.d"
  "bench/fig10_gemv"
  "bench/fig10_gemv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_gemv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
