# Empty compiler generated dependencies file for fig10_gemv.
# This may be replaced when dependencies are built.
