# Empty compiler generated dependencies file for table5_batched.
# This may be replaced when dependencies are built.
