file(REMOVE_RECURSE
  "CMakeFiles/table5_batched.dir/bench/table5_batched.cpp.o"
  "CMakeFiles/table5_batched.dir/bench/table5_batched.cpp.o.d"
  "bench/table5_batched"
  "bench/table5_batched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_batched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
