# Empty compiler generated dependencies file for fig11_composition.
# This may be replaced when dependencies are built.
