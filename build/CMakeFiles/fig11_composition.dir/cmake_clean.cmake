file(REMOVE_RECURSE
  "CMakeFiles/fig11_composition.dir/bench/fig11_composition.cpp.o"
  "CMakeFiles/fig11_composition.dir/bench/fig11_composition.cpp.o.d"
  "bench/fig11_composition"
  "bench/fig11_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
