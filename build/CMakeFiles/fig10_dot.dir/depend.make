# Empty dependencies file for fig10_dot.
# This may be replaced when dependencies are built.
