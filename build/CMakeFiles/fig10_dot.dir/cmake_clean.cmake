file(REMOVE_RECURSE
  "CMakeFiles/fig10_dot.dir/bench/fig10_dot.cpp.o"
  "CMakeFiles/fig10_dot.dir/bench/fig10_dot.cpp.o.d"
  "bench/fig10_dot"
  "bench/fig10_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
