
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_memory.cpp" "CMakeFiles/ablation_memory.dir/bench/ablation_memory.cpp.o" "gcc" "CMakeFiles/ablation_memory.dir/bench/ablation_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fblas_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_mdag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_refblas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
