file(REMOVE_RECURSE
  "CMakeFiles/fig10_gemm.dir/bench/fig10_gemm.cpp.o"
  "CMakeFiles/fig10_gemm.dir/bench/fig10_gemm.cpp.o.d"
  "bench/fig10_gemm"
  "bench/fig10_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
