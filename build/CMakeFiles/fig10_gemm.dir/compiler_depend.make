# Empty compiler generated dependencies file for fig10_gemm.
# This may be replaced when dependencies are built.
