file(REMOVE_RECURSE
  "CMakeFiles/table3_modules.dir/bench/table3_modules.cpp.o"
  "CMakeFiles/table3_modules.dir/bench/table3_modules.cpp.o.d"
  "bench/table3_modules"
  "bench/table3_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
