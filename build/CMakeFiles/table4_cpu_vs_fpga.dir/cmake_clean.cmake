file(REMOVE_RECURSE
  "CMakeFiles/table4_cpu_vs_fpga.dir/bench/table4_cpu_vs_fpga.cpp.o"
  "CMakeFiles/table4_cpu_vs_fpga.dir/bench/table4_cpu_vs_fpga.cpp.o.d"
  "bench/table4_cpu_vs_fpga"
  "bench/table4_cpu_vs_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_cpu_vs_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
