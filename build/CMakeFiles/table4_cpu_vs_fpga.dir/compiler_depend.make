# Empty compiler generated dependencies file for table4_cpu_vs_fpga.
# This may be replaced when dependencies are built.
