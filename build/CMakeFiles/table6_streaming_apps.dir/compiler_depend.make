# Empty compiler generated dependencies file for table6_streaming_apps.
# This may be replaced when dependencies are built.
