file(REMOVE_RECURSE
  "CMakeFiles/table6_streaming_apps.dir/bench/table6_streaming_apps.cpp.o"
  "CMakeFiles/table6_streaming_apps.dir/bench/table6_streaming_apps.cpp.o.d"
  "bench/table6_streaming_apps"
  "bench/table6_streaming_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_streaming_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
