file(REMOVE_RECURSE
  "CMakeFiles/fblas_codegen_cli.dir/fblas_codegen_main.cpp.o"
  "CMakeFiles/fblas_codegen_cli.dir/fblas_codegen_main.cpp.o.d"
  "fblas_codegen"
  "fblas_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fblas_codegen_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
