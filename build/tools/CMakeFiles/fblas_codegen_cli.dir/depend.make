# Empty dependencies file for fblas_codegen_cli.
# This may be replaced when dependencies are built.
