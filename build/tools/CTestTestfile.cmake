# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_fblas_codegen "/root/repo/build/tools/fblas_codegen" "/root/repo/tools/sample_routines.json" "/root/repo/build/tools/sample_out.cl")
set_tests_properties(tool_fblas_codegen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
