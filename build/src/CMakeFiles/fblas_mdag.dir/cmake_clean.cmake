file(REMOVE_RECURSE
  "CMakeFiles/fblas_mdag.dir/mdag/auto_partition.cpp.o"
  "CMakeFiles/fblas_mdag.dir/mdag/auto_partition.cpp.o.d"
  "CMakeFiles/fblas_mdag.dir/mdag/graph.cpp.o"
  "CMakeFiles/fblas_mdag.dir/mdag/graph.cpp.o.d"
  "CMakeFiles/fblas_mdag.dir/mdag/io_volume.cpp.o"
  "CMakeFiles/fblas_mdag.dir/mdag/io_volume.cpp.o.d"
  "CMakeFiles/fblas_mdag.dir/mdag/resources.cpp.o"
  "CMakeFiles/fblas_mdag.dir/mdag/resources.cpp.o.d"
  "CMakeFiles/fblas_mdag.dir/mdag/schedule.cpp.o"
  "CMakeFiles/fblas_mdag.dir/mdag/schedule.cpp.o.d"
  "CMakeFiles/fblas_mdag.dir/mdag/validity.cpp.o"
  "CMakeFiles/fblas_mdag.dir/mdag/validity.cpp.o.d"
  "libfblas_mdag.a"
  "libfblas_mdag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fblas_mdag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
