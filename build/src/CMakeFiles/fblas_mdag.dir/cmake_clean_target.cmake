file(REMOVE_RECURSE
  "libfblas_mdag.a"
)
