# Empty compiler generated dependencies file for fblas_mdag.
# This may be replaced when dependencies are built.
