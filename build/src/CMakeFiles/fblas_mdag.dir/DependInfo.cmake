
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mdag/auto_partition.cpp" "src/CMakeFiles/fblas_mdag.dir/mdag/auto_partition.cpp.o" "gcc" "src/CMakeFiles/fblas_mdag.dir/mdag/auto_partition.cpp.o.d"
  "/root/repo/src/mdag/graph.cpp" "src/CMakeFiles/fblas_mdag.dir/mdag/graph.cpp.o" "gcc" "src/CMakeFiles/fblas_mdag.dir/mdag/graph.cpp.o.d"
  "/root/repo/src/mdag/io_volume.cpp" "src/CMakeFiles/fblas_mdag.dir/mdag/io_volume.cpp.o" "gcc" "src/CMakeFiles/fblas_mdag.dir/mdag/io_volume.cpp.o.d"
  "/root/repo/src/mdag/resources.cpp" "src/CMakeFiles/fblas_mdag.dir/mdag/resources.cpp.o" "gcc" "src/CMakeFiles/fblas_mdag.dir/mdag/resources.cpp.o.d"
  "/root/repo/src/mdag/schedule.cpp" "src/CMakeFiles/fblas_mdag.dir/mdag/schedule.cpp.o" "gcc" "src/CMakeFiles/fblas_mdag.dir/mdag/schedule.cpp.o.d"
  "/root/repo/src/mdag/validity.cpp" "src/CMakeFiles/fblas_mdag.dir/mdag/validity.cpp.o" "gcc" "src/CMakeFiles/fblas_mdag.dir/mdag/validity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fblas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_refblas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
