# Empty dependencies file for fblas_systolic.
# This may be replaced when dependencies are built.
