file(REMOVE_RECURSE
  "CMakeFiles/fblas_systolic.dir/systolic/systolic_array.cpp.o"
  "CMakeFiles/fblas_systolic.dir/systolic/systolic_array.cpp.o.d"
  "libfblas_systolic.a"
  "libfblas_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fblas_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
