file(REMOVE_RECURSE
  "libfblas_systolic.a"
)
