# Empty dependencies file for fblas_core.
# This may be replaced when dependencies are built.
