file(REMOVE_RECURSE
  "libfblas_core.a"
)
