
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fblas/level1.cpp" "src/CMakeFiles/fblas_core.dir/fblas/level1.cpp.o" "gcc" "src/CMakeFiles/fblas_core.dir/fblas/level1.cpp.o.d"
  "/root/repo/src/fblas/level2.cpp" "src/CMakeFiles/fblas_core.dir/fblas/level2.cpp.o" "gcc" "src/CMakeFiles/fblas_core.dir/fblas/level2.cpp.o.d"
  "/root/repo/src/fblas/level3.cpp" "src/CMakeFiles/fblas_core.dir/fblas/level3.cpp.o" "gcc" "src/CMakeFiles/fblas_core.dir/fblas/level3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fblas_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_refblas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
