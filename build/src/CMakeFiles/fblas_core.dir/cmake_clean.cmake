file(REMOVE_RECURSE
  "CMakeFiles/fblas_core.dir/fblas/level1.cpp.o"
  "CMakeFiles/fblas_core.dir/fblas/level1.cpp.o.d"
  "CMakeFiles/fblas_core.dir/fblas/level2.cpp.o"
  "CMakeFiles/fblas_core.dir/fblas/level2.cpp.o.d"
  "CMakeFiles/fblas_core.dir/fblas/level3.cpp.o"
  "CMakeFiles/fblas_core.dir/fblas/level3.cpp.o.d"
  "libfblas_core.a"
  "libfblas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fblas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
