
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/api_batched.cpp" "src/CMakeFiles/fblas_host.dir/host/api_batched.cpp.o" "gcc" "src/CMakeFiles/fblas_host.dir/host/api_batched.cpp.o.d"
  "/root/repo/src/host/api_level1.cpp" "src/CMakeFiles/fblas_host.dir/host/api_level1.cpp.o" "gcc" "src/CMakeFiles/fblas_host.dir/host/api_level1.cpp.o.d"
  "/root/repo/src/host/api_level2.cpp" "src/CMakeFiles/fblas_host.dir/host/api_level2.cpp.o" "gcc" "src/CMakeFiles/fblas_host.dir/host/api_level2.cpp.o.d"
  "/root/repo/src/host/api_level3.cpp" "src/CMakeFiles/fblas_host.dir/host/api_level3.cpp.o" "gcc" "src/CMakeFiles/fblas_host.dir/host/api_level3.cpp.o.d"
  "/root/repo/src/host/api_specialized.cpp" "src/CMakeFiles/fblas_host.dir/host/api_specialized.cpp.o" "gcc" "src/CMakeFiles/fblas_host.dir/host/api_specialized.cpp.o.d"
  "/root/repo/src/host/device.cpp" "src/CMakeFiles/fblas_host.dir/host/device.cpp.o" "gcc" "src/CMakeFiles/fblas_host.dir/host/device.cpp.o.d"
  "/root/repo/src/host/event.cpp" "src/CMakeFiles/fblas_host.dir/host/event.cpp.o" "gcc" "src/CMakeFiles/fblas_host.dir/host/event.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fblas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_refblas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fblas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
