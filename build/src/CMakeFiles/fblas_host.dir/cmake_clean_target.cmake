file(REMOVE_RECURSE
  "libfblas_host.a"
)
