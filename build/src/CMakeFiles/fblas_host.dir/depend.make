# Empty dependencies file for fblas_host.
# This may be replaced when dependencies are built.
