file(REMOVE_RECURSE
  "CMakeFiles/fblas_host.dir/host/api_batched.cpp.o"
  "CMakeFiles/fblas_host.dir/host/api_batched.cpp.o.d"
  "CMakeFiles/fblas_host.dir/host/api_level1.cpp.o"
  "CMakeFiles/fblas_host.dir/host/api_level1.cpp.o.d"
  "CMakeFiles/fblas_host.dir/host/api_level2.cpp.o"
  "CMakeFiles/fblas_host.dir/host/api_level2.cpp.o.d"
  "CMakeFiles/fblas_host.dir/host/api_level3.cpp.o"
  "CMakeFiles/fblas_host.dir/host/api_level3.cpp.o.d"
  "CMakeFiles/fblas_host.dir/host/api_specialized.cpp.o"
  "CMakeFiles/fblas_host.dir/host/api_specialized.cpp.o.d"
  "CMakeFiles/fblas_host.dir/host/device.cpp.o"
  "CMakeFiles/fblas_host.dir/host/device.cpp.o.d"
  "CMakeFiles/fblas_host.dir/host/event.cpp.o"
  "CMakeFiles/fblas_host.dir/host/event.cpp.o.d"
  "libfblas_host.a"
  "libfblas_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fblas_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
