file(REMOVE_RECURSE
  "libfblas_apps.a"
)
