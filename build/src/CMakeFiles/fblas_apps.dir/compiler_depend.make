# Empty compiler generated dependencies file for fblas_apps.
# This may be replaced when dependencies are built.
