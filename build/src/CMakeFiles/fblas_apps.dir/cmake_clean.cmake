file(REMOVE_RECURSE
  "CMakeFiles/fblas_apps.dir/apps/atax.cpp.o"
  "CMakeFiles/fblas_apps.dir/apps/atax.cpp.o.d"
  "CMakeFiles/fblas_apps.dir/apps/axpydot.cpp.o"
  "CMakeFiles/fblas_apps.dir/apps/axpydot.cpp.o.d"
  "CMakeFiles/fblas_apps.dir/apps/bicg.cpp.o"
  "CMakeFiles/fblas_apps.dir/apps/bicg.cpp.o.d"
  "CMakeFiles/fblas_apps.dir/apps/gemver.cpp.o"
  "CMakeFiles/fblas_apps.dir/apps/gemver.cpp.o.d"
  "CMakeFiles/fblas_apps.dir/apps/gesummv.cpp.o"
  "CMakeFiles/fblas_apps.dir/apps/gesummv.cpp.o.d"
  "libfblas_apps.a"
  "libfblas_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fblas_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
