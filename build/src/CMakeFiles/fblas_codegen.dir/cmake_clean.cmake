file(REMOVE_RECURSE
  "CMakeFiles/fblas_codegen.dir/codegen/emitter.cpp.o"
  "CMakeFiles/fblas_codegen.dir/codegen/emitter.cpp.o.d"
  "CMakeFiles/fblas_codegen.dir/codegen/json.cpp.o"
  "CMakeFiles/fblas_codegen.dir/codegen/json.cpp.o.d"
  "CMakeFiles/fblas_codegen.dir/codegen/routine_spec.cpp.o"
  "CMakeFiles/fblas_codegen.dir/codegen/routine_spec.cpp.o.d"
  "CMakeFiles/fblas_codegen.dir/codegen/runner.cpp.o"
  "CMakeFiles/fblas_codegen.dir/codegen/runner.cpp.o.d"
  "libfblas_codegen.a"
  "libfblas_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fblas_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
