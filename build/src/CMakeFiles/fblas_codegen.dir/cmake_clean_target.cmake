file(REMOVE_RECURSE
  "libfblas_codegen.a"
)
