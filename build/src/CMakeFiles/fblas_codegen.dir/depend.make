# Empty dependencies file for fblas_codegen.
# This may be replaced when dependencies are built.
