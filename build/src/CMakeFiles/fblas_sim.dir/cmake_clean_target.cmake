file(REMOVE_RECURSE
  "libfblas_sim.a"
)
