# Empty dependencies file for fblas_sim.
# This may be replaced when dependencies are built.
