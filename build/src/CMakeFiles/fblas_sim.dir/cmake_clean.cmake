file(REMOVE_RECURSE
  "CMakeFiles/fblas_sim.dir/sim/cpu_model.cpp.o"
  "CMakeFiles/fblas_sim.dir/sim/cpu_model.cpp.o.d"
  "CMakeFiles/fblas_sim.dir/sim/device.cpp.o"
  "CMakeFiles/fblas_sim.dir/sim/device.cpp.o.d"
  "CMakeFiles/fblas_sim.dir/sim/frequency_model.cpp.o"
  "CMakeFiles/fblas_sim.dir/sim/frequency_model.cpp.o.d"
  "CMakeFiles/fblas_sim.dir/sim/perf_model.cpp.o"
  "CMakeFiles/fblas_sim.dir/sim/perf_model.cpp.o.d"
  "CMakeFiles/fblas_sim.dir/sim/power_model.cpp.o"
  "CMakeFiles/fblas_sim.dir/sim/power_model.cpp.o.d"
  "CMakeFiles/fblas_sim.dir/sim/resource_model.cpp.o"
  "CMakeFiles/fblas_sim.dir/sim/resource_model.cpp.o.d"
  "CMakeFiles/fblas_sim.dir/sim/work_depth.cpp.o"
  "CMakeFiles/fblas_sim.dir/sim/work_depth.cpp.o.d"
  "libfblas_sim.a"
  "libfblas_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fblas_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
