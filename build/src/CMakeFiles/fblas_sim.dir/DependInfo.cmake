
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cpu_model.cpp" "src/CMakeFiles/fblas_sim.dir/sim/cpu_model.cpp.o" "gcc" "src/CMakeFiles/fblas_sim.dir/sim/cpu_model.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/CMakeFiles/fblas_sim.dir/sim/device.cpp.o" "gcc" "src/CMakeFiles/fblas_sim.dir/sim/device.cpp.o.d"
  "/root/repo/src/sim/frequency_model.cpp" "src/CMakeFiles/fblas_sim.dir/sim/frequency_model.cpp.o" "gcc" "src/CMakeFiles/fblas_sim.dir/sim/frequency_model.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "src/CMakeFiles/fblas_sim.dir/sim/perf_model.cpp.o" "gcc" "src/CMakeFiles/fblas_sim.dir/sim/perf_model.cpp.o.d"
  "/root/repo/src/sim/power_model.cpp" "src/CMakeFiles/fblas_sim.dir/sim/power_model.cpp.o" "gcc" "src/CMakeFiles/fblas_sim.dir/sim/power_model.cpp.o.d"
  "/root/repo/src/sim/resource_model.cpp" "src/CMakeFiles/fblas_sim.dir/sim/resource_model.cpp.o" "gcc" "src/CMakeFiles/fblas_sim.dir/sim/resource_model.cpp.o.d"
  "/root/repo/src/sim/work_depth.cpp" "src/CMakeFiles/fblas_sim.dir/sim/work_depth.cpp.o" "gcc" "src/CMakeFiles/fblas_sim.dir/sim/work_depth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fblas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
