file(REMOVE_RECURSE
  "CMakeFiles/fblas_refblas.dir/refblas/batched.cpp.o"
  "CMakeFiles/fblas_refblas.dir/refblas/batched.cpp.o.d"
  "CMakeFiles/fblas_refblas.dir/refblas/level1.cpp.o"
  "CMakeFiles/fblas_refblas.dir/refblas/level1.cpp.o.d"
  "CMakeFiles/fblas_refblas.dir/refblas/level2.cpp.o"
  "CMakeFiles/fblas_refblas.dir/refblas/level2.cpp.o.d"
  "CMakeFiles/fblas_refblas.dir/refblas/level3.cpp.o"
  "CMakeFiles/fblas_refblas.dir/refblas/level3.cpp.o.d"
  "libfblas_refblas.a"
  "libfblas_refblas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fblas_refblas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
