file(REMOVE_RECURSE
  "libfblas_refblas.a"
)
