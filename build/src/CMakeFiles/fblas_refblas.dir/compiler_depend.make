# Empty compiler generated dependencies file for fblas_refblas.
# This may be replaced when dependencies are built.
