file(REMOVE_RECURSE
  "CMakeFiles/fblas_stream.dir/stream/channel.cpp.o"
  "CMakeFiles/fblas_stream.dir/stream/channel.cpp.o.d"
  "CMakeFiles/fblas_stream.dir/stream/dram.cpp.o"
  "CMakeFiles/fblas_stream.dir/stream/dram.cpp.o.d"
  "CMakeFiles/fblas_stream.dir/stream/scheduler.cpp.o"
  "CMakeFiles/fblas_stream.dir/stream/scheduler.cpp.o.d"
  "CMakeFiles/fblas_stream.dir/stream/streamers.cpp.o"
  "CMakeFiles/fblas_stream.dir/stream/streamers.cpp.o.d"
  "libfblas_stream.a"
  "libfblas_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fblas_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
