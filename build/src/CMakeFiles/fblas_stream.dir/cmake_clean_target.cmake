file(REMOVE_RECURSE
  "libfblas_stream.a"
)
