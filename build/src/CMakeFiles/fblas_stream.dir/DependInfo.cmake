
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/channel.cpp" "src/CMakeFiles/fblas_stream.dir/stream/channel.cpp.o" "gcc" "src/CMakeFiles/fblas_stream.dir/stream/channel.cpp.o.d"
  "/root/repo/src/stream/dram.cpp" "src/CMakeFiles/fblas_stream.dir/stream/dram.cpp.o" "gcc" "src/CMakeFiles/fblas_stream.dir/stream/dram.cpp.o.d"
  "/root/repo/src/stream/scheduler.cpp" "src/CMakeFiles/fblas_stream.dir/stream/scheduler.cpp.o" "gcc" "src/CMakeFiles/fblas_stream.dir/stream/scheduler.cpp.o.d"
  "/root/repo/src/stream/streamers.cpp" "src/CMakeFiles/fblas_stream.dir/stream/streamers.cpp.o" "gcc" "src/CMakeFiles/fblas_stream.dir/stream/streamers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fblas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
