# Empty dependencies file for fblas_stream.
# This may be replaced when dependencies are built.
