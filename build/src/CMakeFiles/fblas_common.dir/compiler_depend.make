# Empty compiler generated dependencies file for fblas_common.
# This may be replaced when dependencies are built.
