file(REMOVE_RECURSE
  "libfblas_common.a"
)
