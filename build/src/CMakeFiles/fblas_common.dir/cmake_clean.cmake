file(REMOVE_RECURSE
  "CMakeFiles/fblas_common.dir/common/error.cpp.o"
  "CMakeFiles/fblas_common.dir/common/error.cpp.o.d"
  "CMakeFiles/fblas_common.dir/common/routines.cpp.o"
  "CMakeFiles/fblas_common.dir/common/routines.cpp.o.d"
  "CMakeFiles/fblas_common.dir/common/table_printer.cpp.o"
  "CMakeFiles/fblas_common.dir/common/table_printer.cpp.o.d"
  "CMakeFiles/fblas_common.dir/common/workload.cpp.o"
  "CMakeFiles/fblas_common.dir/common/workload.cpp.o.d"
  "libfblas_common.a"
  "libfblas_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fblas_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
