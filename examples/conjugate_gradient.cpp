// A real numerical application on top of the host API: the conjugate
// gradient method for an SPD system A x = b, built entirely from FBLAS
// calls (GEMV, DOT, AXPY, SCAL, COPY, NRM2) on device buffers — the
// "FPGA as the main execution platform" usage the paper recommends,
// where operands stay resident in device DRAM across iterations.
//
// Build & run:  ./build/examples/conjugate_gradient [n] [max_iters]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"
#include "refblas/level2.hpp"

int main(int argc, char** argv) {
  using namespace fblas;
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 256;
  const int max_iters = argc > 2 ? std::atoi(argv[2]) : 200;

  // Build a well-conditioned SPD matrix A = M^T M + n*I.
  Workload wl(1234);
  auto m = wl.matrix<float>(n, n, -0.5, 0.5);
  std::vector<float> a(n * n, 0.0f);
  {
    MatrixView<const float> M(m.data(), n, n);
    MatrixView<float> A(a.data(), n, n);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        float acc = 0;
        for (std::int64_t k = 0; k < n; ++k) acc += M(k, i) * M(k, j);
        A(i, j) = acc + (i == j ? static_cast<float>(n) : 0.0f);
      }
    }
  }
  auto xref = wl.vector<float>(n);
  std::vector<float> b(n, 0.0f);
  ref::gemv<float>(Transpose::None, 1.0f,
                   MatrixView<const float>(a.data(), n, n),
                   VectorView<const float>(xref.data(), n), 0.0f,
                   VectorView<float>(b.data(), n));

  host::Device device(sim::DeviceId::Stratix10);
  host::Context ctx(device);
  host::RoutineConfig knobs;
  knobs.width = 16;
  knobs.tile_rows = 128;
  knobs.tile_cols = 128;
  host::ConfigGuard scoped = ctx.with(knobs);

  // All operands live in device DRAM for the whole solve.
  host::Buffer<float> A(device, n * n, 0);
  host::Buffer<float> x(device, n, 1);
  host::Buffer<float> r(device, n, 2 % device.bank_count());
  host::Buffer<float> p(device, n, 3 % device.bank_count());
  host::Buffer<float> ap(device, n, 1);
  A.write(a);
  x.write(std::vector<float>(n, 0.0f));
  r.write(b);  // r0 = b - A x0 = b
  p.write(b);

  std::printf("CG on a %lldx%lld SPD system (device-resident operands)\n",
              static_cast<long long>(n), static_cast<long long>(n));
  float rr = ctx.dot<float>(n, r, 1, r, 1);
  const float rr0 = rr;
  int iters = 0;
  for (; iters < max_iters; ++iters) {
    if (rr <= 1e-10f * rr0) break;
    // ap = A p
    ctx.gemv<float>(Transpose::None, n, n, 1.0f, A, p, 1, 0.0f, ap, 1);
    const float pap = ctx.dot<float>(n, p, 1, ap, 1);
    const float alpha = rr / pap;
    // x += alpha p;  r -= alpha Ap
    ctx.axpy<float>(n, alpha, p, 1, x, 1);
    ctx.axpy<float>(n, -alpha, ap, 1, r, 1);
    const float rr_new = ctx.dot<float>(n, r, 1, r, 1);
    const float beta = rr_new / rr;
    rr = rr_new;
    // p = r + beta p   (scal then axpy keeps everything on device)
    ctx.scal<float>(n, beta, p, 1);
    ctx.axpy<float>(n, 1.0f, r, 1, p, 1);
    if (iters < 5 || iters % 10 == 0) {
      std::printf("  iter %3d  ||r||^2 = %.3e\n", iters, double(rr));
    }
  }
  const auto xs = x.to_host();
  const double err = rel_error(xs, xref);
  std::printf("converged in %d iterations; solution rel. error vs ground"
              " truth: %.2e\n", iters, err);
  std::printf("total FBLAS calls executed on device: %s\n",
              err < 1e-3 ? "solution verified" : "VERIFICATION FAILED");
  return err < 1e-3 ? 0 : 1;
}
