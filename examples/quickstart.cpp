// Quickstart: the classical host-API flow of Sec. II-B.
//
//   1. pick a device model (Stratix 10 by default),
//   2. allocate buffers on its DDR banks and copy data in,
//   3. call BLAS routines (synchronously or asynchronously),
//   4. copy results back.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "common/workload.hpp"
#include "host/buffer.hpp"
#include "host/context.hpp"

int main() {
  using namespace fblas;

  host::Device device(sim::DeviceId::Stratix10);
  host::Context ctx(device);
  std::printf("Device: %s (%d DDR banks)\n",
              std::string(device.spec().name).c_str(), device.bank_count());

  // Non-functional knobs, the same parameters the code generator exposes.
  // A ConfigGuard scopes the override: the previous knobs come back when
  // the guard goes out of scope.
  host::RoutineConfig knobs;
  knobs.width = 16;
  knobs.tile_rows = 256;
  knobs.tile_cols = 256;
  host::ConfigGuard scoped = ctx.with(knobs);

  const std::int64_t n = 1 << 12;
  Workload wl(2024);
  auto hx = wl.vector<float>(n);
  auto hy = wl.vector<float>(n);

  // Manual bank placement (the BSP offers no automatic interleaving).
  host::Buffer<float> x(device, n, /*bank=*/0);
  host::Buffer<float> y(device, n, /*bank=*/1);
  x.write(hx);
  y.write(hy);

  // ---- Level 1: y = 2x + y, then dot and norms -------------------------
  ctx.axpy<float>(n, 2.0f, x, 1, y, 1);
  const float d = ctx.dot<float>(n, x, 1, y, 1);
  const float norm = ctx.nrm2<float>(n, x);
  std::printf("saxpy + sdot:  x.y' = %.4f, ||x|| = %.4f\n", d, norm);

  // ---- Asynchronous calls ----------------------------------------------
  float async_dot = 0;
  host::Event e = ctx.dot_async<float>(n, x, 1, y, 1, &async_dot);
  std::printf("async sdot enqueued (done=%d)...\n", int(e.done()));
  e.wait();
  std::printf("async sdot finished: %.4f\n", async_dot);

  // ---- Level 2: y' = A x -----------------------------------------------
  const std::int64_t rows = 512, cols = 256;
  auto ha = wl.matrix<float>(rows, cols);
  host::Buffer<float> a(device, rows * cols, 0);
  host::Buffer<float> xv(device, cols, 1);
  host::Buffer<float> yv(device, rows, 2);
  a.write(ha);
  xv.write(wl.vector<float>(cols));
  yv.write(std::vector<float>(rows, 0.0f));
  ctx.gemv<float>(Transpose::None, rows, cols, 1.0f, a, xv, 1, 0.0f, yv, 1);
  std::printf("sgemv(%lldx%lld): y[0] = %.4f\n",
              static_cast<long long>(rows), static_cast<long long>(cols),
              yv.to_host()[0]);

  // ---- Level 3: C = A B (systolic GEMM) --------------------------------
  host::RoutineConfig gemm_knobs = ctx.config();
  gemm_knobs.pe_rows = 4;
  gemm_knobs.pe_cols = 4;
  gemm_knobs.gemm_tile_rows = 32;
  gemm_knobs.gemm_tile_cols = 32;
  const std::int64_t m = 128;
  host::Buffer<float> ga(device, m * m, 0);
  host::Buffer<float> gb(device, m * m, 1);
  host::Buffer<float> gc(device, m * m, 2);
  ga.write(wl.matrix<float>(m, m));
  gb.write(wl.matrix<float>(m, m));
  gc.write(std::vector<float>(m * m, 0.0f));
  // Per-call override: the guard returned by with() lives only for this
  // statement, and the knobs are captured when the call is enqueued.
  ctx.with(gemm_knobs)->gemm<float>(Transpose::None, Transpose::None, m, m,
                                    m, 1.0f, ga, gb, 0.0f, gc);
  std::printf("sgemm(%lld^3):  C[0,0] = %.4f\n", static_cast<long long>(m),
              gc.to_host()[0]);

  std::puts("done.");
  return 0;
}
