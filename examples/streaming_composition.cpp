// Streaming composition walkthrough (Sec. V): builds the AXPYDOT, BICG,
// ATAX and GEMVER module DAGs, analyzes their validity and I/O volume,
// and runs the streaming versions against the host-layer baselines in
// the cycle-accurate simulator.
//
// Build & run:  ./build/examples/streaming_composition
#include <cstdio>

#include "apps/atax.hpp"
#include "apps/axpydot.hpp"
#include "apps/bicg.hpp"
#include "apps/gemver.hpp"
#include "common/workload.hpp"
#include "mdag/io_volume.hpp"
#include "mdag/validity.hpp"

int main() {
  using namespace fblas;

  std::puts("== MDAG analysis ==");
  const std::int64_t n = 2048, tile = 64;
  struct Case {
    const char* name;
    mdag::Mdag g;
  };
  Case cases[] = {
      {"AXPYDOT", apps::axpydot_mdag(n)},
      {"BICG", apps::bicg_mdag(n, n, tile)},
      {"ATAX", apps::atax_mdag(n, n, tile)},
      {"GEMVER", apps::gemver_mdag(n, tile)},
  };
  for (const auto& c : cases) {
    const auto v = mdag::validate(c.g);
    std::printf("%-8s valid=%-3s multitree=%-3s io_ops=%lld\n", c.name,
                v.valid ? "yes" : "NO",
                mdag::is_multitree(c.g) ? "yes" : "no",
                static_cast<long long>(mdag::total_io_ops(c.g)));
    if (!v.valid) std::printf("  -> %s", v.summary.c_str());
  }

  std::puts("\n== AXPYDOT: streaming vs host layer (cycle simulation) ==");
  Workload wl(99);
  {
    const std::int64_t len = 1 << 15;
    auto w = wl.vector<float>(len);
    auto v = wl.vector<float>(len);
    auto u = wl.vector<float>(len);
    const auto streaming = apps::axpydot_streaming<float>(
        sim::stratix10(), stream::Mode::Cycle, 16,
        VectorView<const float>(w.data(), len),
        VectorView<const float>(v.data(), len),
        VectorView<const float>(u.data(), len), 2.0f);
    host::Device dev(sim::DeviceId::Stratix10);
    host::Context ctx(dev, stream::Mode::Cycle);
    host::RoutineConfig knobs;
    knobs.width = 16;
    host::ConfigGuard scoped = ctx.with(knobs);
    const auto host = apps::axpydot_host_layer<float>(
        ctx, VectorView<const float>(w.data(), len),
        VectorView<const float>(v.data(), len),
        VectorView<const float>(u.data(), len), 2.0f);
    std::printf("beta = %.4f (both versions agree: %s)\n", streaming.beta,
                std::abs(streaming.beta - host.beta) < 1e-2 ? "yes" : "NO");
    std::printf("streaming: %llu cycles   host layer: %llu cycles   "
                "speedup %.2fx\n",
                static_cast<unsigned long long>(streaming.cycles),
                static_cast<unsigned long long>(host.cycles),
                static_cast<double>(host.cycles) /
                    static_cast<double>(streaming.cycles));
  }

  std::puts("\n== ATAX: why channel depth matters (Sec. V-B) ==");
  {
    const std::int64_t an = 64, am = 48, atile = 16;
    auto a = wl.matrix<float>(an, am);
    auto x = wl.vector<float>(am);
    try {
      apps::atax_streaming<float>(sim::stratix10(), stream::Mode::Functional,
                                  4, atile, /*a_channel_depth=*/atile,
                                  MatrixView<const float>(a.data(), an, am),
                                  VectorView<const float>(x.data(), am));
      std::puts("unexpected: undersized channel completed");
    } catch (const DeadlockError& e) {
      std::puts("undersized A channel -> DeadlockError, as predicted:");
      // Show the first line of the diagnostic.
      const std::string msg = e.what();
      std::printf("  %s\n", msg.substr(0, msg.find('\n')).c_str());
    }
    const auto depth = apps::atax_min_channel_depth(am, atile, 4);
    const auto ok = apps::atax_streaming<float>(
        sim::stratix10(), stream::Mode::Functional, 4, atile, depth,
        MatrixView<const float>(a.data(), an, am),
        VectorView<const float>(x.data(), am));
    std::printf("channel sized to M*TN (= %lld): completes, y[0] = %.4f\n",
                static_cast<long long>(depth), ok.y[0]);
  }

  std::puts("\n== GEMVER: two-component schedule (Fig. 9) ==");
  {
    const std::int64_t gn = 256, gtile = 64;
    auto a = wl.matrix<float>(gn, gn);
    auto u1 = wl.vector<float>(gn);
    auto v1 = wl.vector<float>(gn);
    auto u2 = wl.vector<float>(gn);
    auto v2 = wl.vector<float>(gn);
    auto y = wl.vector<float>(gn);
    auto z = wl.vector<float>(gn);
    auto cv = [gn](const std::vector<float>& vec) {
      return VectorView<const float>(vec.data(), gn);
    };
    const auto streaming = apps::gemver_streaming<float>(
        sim::stratix10(), stream::Mode::Cycle, 16, gtile, 1.5f, 0.5f,
        MatrixView<const float>(a.data(), gn, gn), cv(u1), cv(v1), cv(u2),
        cv(v2), cv(y), cv(z));
    const auto cpu = apps::gemver_cpu<float>(
        1.5f, 0.5f, MatrixView<const float>(a.data(), gn, gn), cv(u1),
        cv(v1), cv(u2), cv(v2), cv(y), cv(z));
    std::printf("2 components, %llu total cycles; w matches CPU: %s\n",
                static_cast<unsigned long long>(streaming.cycles),
                rel_error(streaming.w, cpu.w) < 1e-3 ? "yes" : "NO");
  }
  return 0;
}
