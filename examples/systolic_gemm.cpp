// Systolic GEMM walkthrough (Sec. III-C, Fig. 3): steps the explicit
// PR x PC PE-grid simulator with skewed wavefront feeding and a drain
// chain, verifies it against the reference BLAS and the time-multiplexed
// single-kernel module, and shows the cycle/load-balance properties that
// make the architecture scale.
//
// Build & run:  ./build/examples/systolic_gemm
#include <cstdio>

#include "common/workload.hpp"
#include "fblas/level3.hpp"
#include "refblas/level3.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"
#include "systolic/systolic_array.hpp"

int main() {
  using namespace fblas;
  Workload wl(77);
  const std::int64_t m = 24, n = 20, k = 32;
  auto a = wl.matrix<float>(m, k);
  auto b = wl.matrix<float>(k, n);

  std::vector<float> expect(m * n, 0.0f);
  ref::gemm<float>(Transpose::None, Transpose::None, 1.0f,
                   MatrixView<const float>(a.data(), m, k),
                   MatrixView<const float>(b.data(), k, n), 0.0f,
                   MatrixView<float>(expect.data(), m, n));

  std::puts("== Explicit PE grid (output stationary, skewed wavefronts) ==");
  systolic::SystolicArray<float> grid(4, 4);
  std::vector<float> c(m * n, 0.0f);
  const auto cycles = grid.multiply(MatrixView<const float>(a.data(), m, k),
                                    MatrixView<const float>(b.data(), k, n),
                                    MatrixView<float>(c.data(), m, n));
  std::printf("4x4 grid, %lldx%lldx%lld: %llu cycles"
              " (k + PR-1 + PC-1 + PR per tile), rel. error %.2e\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(k),
              static_cast<unsigned long long>(cycles),
              rel_error(c, expect));
  std::printf("constant fan-out per PE: %d connections (the property that"
              " lets the grid scale)\n",
              systolic::SystolicArray<float>::connections_per_pe());
  std::printf("total MACs: %llu (= m*n*k), per-PE load balance: %llu vs"
              " %llu MACs\n",
              static_cast<unsigned long long>(grid.total_macs()),
              static_cast<unsigned long long>(grid.pe_macs(0, 0)),
              static_cast<unsigned long long>(grid.pe_macs(3, 3)));

  std::puts("\n== Time-multiplexed single-kernel module (Intel-style) ==");
  const core::GemmConfig cfg{4, 4, 8, 8};
  stream::Graph g(stream::Mode::Cycle);
  auto& ca = g.channel<float>("A", 128);
  auto& cb = g.channel<float>("B", 128);
  auto& cc = g.channel<float>("Cin", 4);
  auto& out = g.channel<float>("out", 128);
  std::vector<float> c2(m * n, 0.0f);
  g.spawn("read_A", core::read_a_gemm<float>(
                        MatrixView<const float>(a.data(), m, k), cfg, n, ca));
  g.spawn("read_B", core::read_b_gemm<float>(
                        MatrixView<const float>(b.data(), k, n), cfg, m, cb));
  g.spawn("gemm",
          core::gemm<float>(cfg, m, n, k, 1.0f, 0.0f, ca, cb, cc, out));
  g.spawn("store_C",
          stream::write_matrix<float>(MatrixView<float>(c2.data(), m, n),
                                      core::gemm_c_schedule(cfg),
                                      cfg.pe_cols, out));
  g.run();
  std::printf("4x4 grid time-multiplexed over 8x8 compute tiles: %llu"
              " cycles, rel. error %.2e\n",
              static_cast<unsigned long long>(g.cycles()),
              rel_error(c2, expect));
  std::printf("the two engines agree with each other: rel. error %.2e\n",
              rel_error(c, c2));

  std::puts("\n== Scaling: grid size vs cycles (same 48x48x48 problem) ==");
  const std::int64_t s = 48;
  auto sa = wl.matrix<float>(s, s);
  auto sb = wl.matrix<float>(s, s);
  for (int gsz : {2, 4, 8}) {
    systolic::SystolicArray<float> arr(gsz, gsz);
    std::vector<float> sc(s * s, 0.0f);
    const auto cyc = arr.multiply(MatrixView<const float>(sa.data(), s, s),
                                  MatrixView<const float>(sb.data(), s, s),
                                  MatrixView<float>(sc.data(), s, s));
    std::printf("  %dx%d PEs -> %6llu cycles\n", gsz, gsz,
                static_cast<unsigned long long>(cyc));
  }
  std::puts("\nQuadrupling the PEs roughly quarters the cycle count until"
            " fill/drain overheads bite\n(the compute/memory tile ratio"
            " trade-off of Fig. 10, right).");
  return 0;
}
