// Code generator walkthrough (Sec. II-C): a JSON routines specification
// is parsed, validated against the target device's place-and-route
// limits, and emitted as Intel-channel-style OpenCL kernels. The same
// specification also yields simulator configurations, which this demo
// runs to show the generated design computing a GEMV.
//
// Build & run:  ./build/examples/codegen_demo
#include <cstdio>

#include "codegen/emitter.hpp"
#include "common/workload.hpp"
#include "refblas/level2.hpp"
#include "stream/graph.hpp"
#include "stream/streamers.hpp"

int main() {
  using namespace fblas;

  const char* spec_json = R"({
    "device": "stratix10",
    "routines": [
      {"blas": "dot",  "precision": "single", "user_name": "app_sdot",
       "width": 32},
      {"blas": "gemv", "precision": "single", "user_name": "app_sgemv",
       "width": 8, "tile_rows": 32, "tile_cols": 32, "tiles_by": "rows"},
      {"blas": "gemm", "precision": "single", "user_name": "app_sgemm",
       "pe_rows": 8, "pe_cols": 8, "tile_rows": 64, "tile_cols": 64}
    ]
  })";

  std::puts("== Routines specification ==");
  std::puts(spec_json);
  const auto spec = codegen::parse_spec(spec_json);
  std::printf("parsed %zu routines for %s\n\n", spec.routines.size(),
              std::string(sim::device(spec.device).name).c_str());

  std::puts("== Generated OpenCL (excerpt: the DOT module) ==");
  const auto dot_design =
      codegen::emit(spec.routines[0], sim::device(spec.device));
  std::fputs(dot_design.source.c_str(), stdout);

  std::puts("== Kernel inventory for the full file ==");
  for (const auto& r : spec.routines) {
    const auto d = codegen::emit(r, sim::device(spec.device));
    std::printf("%-10s -> %zu kernels, %zu channels\n",
                r.user_name.c_str(), d.kernel_names.size(),
                d.channel_names.size());
  }

  std::puts("\n== Feasibility gating ==");
  codegen::RoutineSpec bad;
  bad.kind = RoutineKind::Dot;
  bad.precision = Precision::Double;
  bad.width = 256;
  try {
    codegen::emit(bad, sim::stratix10());
    std::puts("unexpected: infeasible design accepted");
  } catch (const FitError& e) {
    std::printf("ddot at W=256 rejected: %s\n", e.what());
  }

  std::puts("\n== Running the generated GEMV configuration ==");
  const auto design = codegen::emit(spec.routines[1], sim::device(spec.device));
  const auto cfg = design.gemv_config();
  Workload wl(5);
  const std::int64_t rows = 96, cols = 64;
  auto a = wl.matrix<float>(rows, cols);
  auto x = wl.vector<float>(cols);
  auto y = wl.vector<float>(rows);
  auto expect = y;
  ref::gemv<float>(Transpose::None, 1.0f,
                   MatrixView<const float>(a.data(), rows, cols),
                   VectorView<const float>(x.data(), cols), 1.0f,
                   VectorView<float>(expect.data(), rows));
  stream::Graph g;
  auto& ca = g.channel<float>("A", 64);
  auto& cx = g.channel<float>("x", 64);
  auto& cy = g.channel<float>("y", 64);
  auto& out = g.channel<float>("out", 64);
  std::vector<float> got;
  g.spawn("read_A",
          stream::read_matrix<float>(
              MatrixView<const float>(a.data(), rows, cols),
              core::gemv_a_schedule(cfg), 1, cfg.width, ca));
  g.spawn("read_x", stream::read_vector<float>(
                        VectorView<const float>(x.data(), cols),
                        core::gemv_x_repeat(cfg, rows, cols), cfg.width, cx));
  g.spawn("read_y", stream::read_vector<float>(
                        VectorView<const float>(y.data(), rows), 1,
                        cfg.width, cy));
  g.spawn("gemv", core::gemv<float>(cfg, rows, cols, 1.0f, 1.0f, ca, cx, cy,
                                    out));
  g.spawn("collect", stream::collect<float>(rows, out, got));
  g.run();
  std::printf("generated design vs reference BLAS: rel. error %.2e\n",
              rel_error(got, expect));
  return 0;
}
