// Space/time trade-off explorer (Sec. IV): for a chosen routine and
// device, sweeps the vectorization width and reports circuit work/depth,
// resources, expected performance and feasibility; then applies the
// optimal-width formulas to dimension a module against the memory
// interface instead of overprovisioning it.
//
// Build & run:  ./build/examples/design_explorer [dot|gemv] [arria10|stratix10]
#include <cstdio>
#include <string>

#include "common/table_printer.hpp"
#include "sim/frequency_model.hpp"
#include "sim/perf_model.hpp"
#include "sim/power_model.hpp"
#include "sim/resource_model.hpp"
#include "sim/work_depth.hpp"

int main(int argc, char** argv) {
  using namespace fblas;
  const std::string routine = argc > 1 ? argv[1] : "dot";
  const std::string device = argc > 2 ? argv[2] : "stratix10";
  const RoutineKind kind = routine_from_name(routine);
  const auto& dev = sim::device(sim::device_from_name(device));

  std::printf("Space/time exploration: %s on %s\n\n", routine.c_str(),
              std::string(dev.name).c_str());
  TablePrinter t({"W", "CW", "CD", "ALMs", "DSPs", "M20Ks",
                  "Expected GOps/s", "P [W]", "Utilization", "Feasible"});
  for (int w = 2; w <= 512; w *= 2) {
    const sim::ModuleShape shape{kind, Precision::Single, w, 1024, 1024, 0,
                                 0};
    const auto wd =
        sim::analyze(kind, Precision::Single, w, 1 << 20, dev);
    const auto r = sim::estimate_design(shape, dev);
    const auto f = sim::module_frequency(kind, Precision::Single, dev);
    const auto timing =
        sim::level1_timing(kind, Precision::Single, w, 100'000'000, dev);
    const bool feasible = sim::place_and_route_feasible(shape, dev);
    t.add_row({TablePrinter::fmt_int(w), TablePrinter::fmt(wd.circuit_work, 0),
               TablePrinter::fmt(wd.circuit_depth, 0),
               TablePrinter::fmt(r.alms, 0), TablePrinter::fmt(r.dsps, 0),
               TablePrinter::fmt(r.m20ks, 0),
               TablePrinter::fmt(timing.expected_gops, 1),
               TablePrinter::fmt(sim::board_power_watts(r, f.mhz, dev), 1),
               TablePrinter::fmt(100 * sim::utilization(r, dev), 1) + "%",
               feasible ? "yes" : "no"});
  }
  t.print();

  std::puts("\n== Dimensioning against the memory interface (Sec. IV-B) ==");
  const auto f = sim::module_frequency(kind, Precision::Single, dev);
  const auto& info = routine_info(kind);
  for (int banks = 1; banks <= dev.ddr_banks; ++banks) {
    const double bw = banks * dev.bank_bandwidth_gbs;
    const int w = sim::optimal_width(bw, f.mhz, 4, info.operands_per_width);
    std::printf("  %d bank(s) @ %.1f GB/s, %.0f MHz -> optimal W = %d"
                " (%d operands per W per cycle)\n",
                banks, bw, f.mhz, w, info.operands_per_width);
  }
  std::puts("\n== Tiling lowers the pressure (GEMV) ==");
  for (std::int64_t tile : {std::int64_t{8}, std::int64_t{64},
                            std::int64_t{1024}}) {
    const int w =
        sim::optimal_width_tiled(dev.bank_bandwidth_gbs, f.mhz, 4, tile, tile);
    std::printf("  %4lldx%-4lld tiles -> optimal W = %d\n",
                static_cast<long long>(tile), static_cast<long long>(tile),
                w);
  }
  std::puts("\nLarger tiles approach W = B/(F*S): double the untiled width,"
            " because the x\noperand is fetched once per tile instead of"
            " once per element.");
  return 0;
}
